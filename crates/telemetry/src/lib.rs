//! # scales-telemetry
//!
//! The request-scoped observability layer of the serving stack: trace
//! context, stage-level latency attribution, per-op plan profiles, and
//! the flight recorder behind the HTTP debug endpoints. Std-only, no
//! dependencies — every serving crate (models, serve, runtime, router,
//! http) threads these types without pulling anything else in.
//!
//! Four pieces:
//!
//! - [`RequestId`] — the trace handle. The HTTP edge accepts a valid
//!   `X-Scales-Request-Id` header or mints one from a process-unique
//!   atomic counter, carries it on the request through router, runtime
//!   and ticket, and echoes it on **every** response (refusals
//!   included), so any client-observed outcome is correlatable with a
//!   recorded trace.
//! - [`RequestTrace`] + [`Stage`] — one completed request, attributed to
//!   the eight serving stages (`parse` → `write`). Spans telescope over
//!   one monotonic timeline, so they are non-negative by construction
//!   and sum *exactly* to the recorded total.
//! - [`FlightRecorder`] — a mutex-sharded fixed-capacity ring of recent
//!   traces plus a separate ring retaining slow requests above a
//!   threshold; snapshots render as hand-rolled JSON for
//!   `GET /v1/debug/traces` and are available as typed values
//!   in-process.
//! - [`OpProfile`] — cumulative calls/nanoseconds per deployed-op kind,
//!   accumulated in the planned executor's workspace when profiling is
//!   switched on (zero cost when off) and aggregated per model for
//!   `GET /v1/debug/profile` and the `scales_plan_op_*` series.
//!
//! ```
//! use scales_telemetry::{FlightRecorder, RequestId, RequestTrace, Stage};
//! use std::time::Duration;
//!
//! let recorder = FlightRecorder::new(64, Duration::from_millis(250), 16);
//! let mut trace = RequestTrace::new(RequestId::generate(), 200);
//! trace.stage_ns[Stage::Infer as usize] = 1_000_000;
//! trace.total_ns = 1_000_000;
//! recorder.record(trace);
//! assert_eq!(recorder.recent().len(), 1);
//! assert!(recorder.slow().is_empty(), "1 ms is under the 250 ms threshold");
//! ```

mod id;
mod profile;
mod recorder;
mod trace;

pub use id::{RequestId, TelemetryError};
pub use profile::{OpProfile, OpProfileEntry};
pub use recorder::FlightRecorder;
pub use trace::{render_traces_json, RequestTrace, RuntimeStamps, Stage, STAGES};
