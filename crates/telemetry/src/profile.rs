//! Per-op plan profiles: where planned-forward wall time actually goes.

/// Cumulative per-op-kind profile of the planned executor.
///
/// When profiling is switched on, the executor stamps the monotonic
/// clock around every op it runs and accumulates `(calls, ns)` here,
/// keyed by the op's stable kind label (`"body_conv"`,
/// `"float_conv"`, `"relu"`, …). When profiling is off — the default —
/// nothing is stamped and the profile stays empty: the hot loop pays
/// one branch.
///
/// Entries keep first-seen order (plan op order), so rendering is
/// deterministic. Profiles merge associatively across workers and
/// models via [`merge`](OpProfile::merge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    entries: Vec<OpProfileEntry>,
}

/// One op kind's cumulative cost inside an [`OpProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfileEntry {
    /// Stable op-kind label (e.g. `"body_conv"`).
    pub kind: &'static str,
    /// Times an op of this kind ran.
    pub calls: u64,
    /// Total nanoseconds spent in ops of this kind.
    pub total_ns: u64,
}

impl OpProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one executed op of `kind` that took `ns` nanoseconds.
    pub fn record(&mut self, kind: &'static str, ns: u64) {
        match self.entries.iter_mut().find(|e| e.kind == kind) {
            Some(entry) => {
                entry.calls += 1;
                entry.total_ns += ns;
            }
            None => self.entries.push(OpProfileEntry { kind, calls: 1, total_ns: ns }),
        }
    }

    /// Fold another profile into this one (summing matching kinds,
    /// appending new ones).
    pub fn merge(&mut self, other: &OpProfile) {
        for e in &other.entries {
            match self.entries.iter_mut().find(|mine| mine.kind == e.kind) {
                Some(mine) => {
                    mine.calls += e.calls;
                    mine.total_ns += e.total_ns;
                }
                None => self.entries.push(e.clone()),
            }
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The per-kind entries, in first-seen order.
    #[must_use]
    pub fn entries(&self) -> &[OpProfileEntry] {
        &self.entries
    }

    /// Total nanoseconds across all kinds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.total_ns).sum()
    }

    /// Total calls across all kinds.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.entries.iter().map(|e| e.calls).sum()
    }

    /// Forget everything recorded so far.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Render as a hand-rolled JSON array of
    /// `{"op":…,"calls":…,"total_ns":…}` objects, in entry order — the
    /// per-model payload of `GET /v1/debug/profile`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.entries.len() * 48);
        out.push('[');
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"op\":\"{}\",\"calls\":{},\"total_ns\":{}}}",
                e.kind, e.calls, e.total_ns
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_accumulates_per_kind() {
        let mut p = OpProfile::new();
        assert!(p.is_empty());
        p.record("body_conv", 100);
        p.record("relu", 5);
        p.record("body_conv", 50);
        assert_eq!(p.entries().len(), 2, "kinds coalesce");
        assert_eq!(p.entries()[0], OpProfileEntry { kind: "body_conv", calls: 2, total_ns: 150 });
        assert_eq!(p.total_ns(), 155);
        assert_eq!(p.total_calls(), 3);
        p.clear();
        assert!(p.is_empty());
    }

    #[test]
    fn merge_sums_matching_kinds_and_appends_new_ones() {
        let mut a = OpProfile::new();
        a.record("body_conv", 10);
        let mut b = OpProfile::new();
        b.record("body_conv", 5);
        b.record("pixel_shuffle", 7);
        a.merge(&b);
        assert_eq!(a.entries().len(), 2);
        assert_eq!(a.entries()[0].total_ns, 15);
        assert_eq!(a.entries()[1], OpProfileEntry { kind: "pixel_shuffle", calls: 1, total_ns: 7 });
        // Merging an empty profile is the identity.
        let before = a.clone();
        a.merge(&OpProfile::new());
        assert_eq!(a, before);
    }

    #[test]
    fn profiles_render_as_json() {
        let mut p = OpProfile::new();
        assert_eq!(p.to_json(), "[]");
        p.record("relu", 3);
        p.record("add", 4);
        assert_eq!(
            p.to_json(),
            "[{\"op\":\"relu\",\"calls\":1,\"total_ns\":3},{\"op\":\"add\",\"calls\":1,\"total_ns\":4}]"
        );
    }
}
