//! Request ids: the trace handle carried from the wire to the ticket.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-unique counter behind [`RequestId::generate`]. Starts at 1 so
/// a generated id is never the all-zero string.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A request's trace id.
///
/// The id is either client-supplied (the `X-Scales-Request-Id` header,
/// accepted only when it satisfies [the header
/// rule](RequestId::parse)) or minted by [`RequestId::generate`] from a
/// process-unique atomic counter. Cheap to clone (`Arc<str>` inside) —
/// it rides on the request through router, runtime queue, and ticket,
/// and is echoed on every HTTP response.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RequestId(Arc<str>);

impl RequestId {
    /// Accept a client-supplied id.
    ///
    /// The rule matches the tenant/model-name rule used everywhere else
    /// in the stack — 1–64 characters of `[A-Za-z0-9._-]` — so an id is
    /// always safe to echo in a response header, embed in a Prometheus
    /// exemplar, or print in a log line without escaping.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::InvalidRequestId`] when empty, longer than 64
    /// bytes, or containing any other character.
    pub fn parse(id: &str) -> Result<Self, TelemetryError> {
        if id.is_empty() {
            return Err(TelemetryError::InvalidRequestId { what: "empty" });
        }
        if id.len() > 64 {
            return Err(TelemetryError::InvalidRequestId { what: "longer than 64 bytes" });
        }
        if !id.bytes().all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b)) {
            return Err(TelemetryError::InvalidRequestId {
                what: "allowed characters are [A-Za-z0-9._-]",
            });
        }
        Ok(Self(Arc::from(id)))
    }

    /// Mint a fresh id from the process-unique atomic counter, prefixed
    /// with the process id so ids from co-located servers stay distinct
    /// in shared logs.
    #[must_use]
    pub fn generate() -> Self {
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        Self(Arc::from(format!("req-{:x}-{n:x}", std::process::id()).as_str()))
    }

    /// The wire policy in one call: a valid client-supplied id is
    /// accepted verbatim, anything else (absent *or* invalid) gets a
    /// generated id — a hostile header can never break correlation.
    #[must_use]
    pub fn accept_or_generate(header: Option<&str>) -> Self {
        header.and_then(|h| Self::parse(h).ok()).unwrap_or_else(Self::generate)
    }

    /// The id as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RequestId({})", self.0)
    }
}

/// Typed telemetry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A client-supplied request id violated the header rule.
    InvalidRequestId {
        /// What exactly was wrong.
        what: &'static str,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::InvalidRequestId { what } => {
                write!(f, "invalid request id: {what} (1-64 characters of [A-Za-z0-9._-])")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_ids_parse_verbatim() {
        for ok in ["a", "req-1f3a-2c", "A.b_C-9", &"x".repeat(64)] {
            assert_eq!(RequestId::parse(ok).unwrap().as_str(), ok);
        }
    }

    #[test]
    fn hostile_ids_are_rejected_with_typed_errors() {
        assert_eq!(
            RequestId::parse("").unwrap_err(),
            TelemetryError::InvalidRequestId { what: "empty" }
        );
        assert_eq!(
            RequestId::parse(&"x".repeat(65)).unwrap_err(),
            TelemetryError::InvalidRequestId { what: "longer than 64 bytes" }
        );
        for bad in ["has space", "new\nline", "quote\"", "läger", "a/b"] {
            assert!(matches!(
                RequestId::parse(bad).unwrap_err(),
                TelemetryError::InvalidRequestId { .. }
            ));
        }
    }

    #[test]
    fn generated_ids_are_unique_and_valid() {
        let a = RequestId::generate();
        let b = RequestId::generate();
        assert_ne!(a, b);
        assert!(RequestId::parse(a.as_str()).is_ok(), "{a}");
    }

    #[test]
    fn accept_or_generate_applies_the_wire_policy() {
        assert_eq!(RequestId::accept_or_generate(Some("client-7")).as_str(), "client-7");
        let minted = RequestId::accept_or_generate(Some("not valid!"));
        assert_ne!(minted.as_str(), "not valid!");
        assert!(RequestId::parse(minted.as_str()).is_ok());
        assert!(RequestId::accept_or_generate(None).as_str().starts_with("req-"));
    }

    #[test]
    fn errors_display_their_cause() {
        let err = TelemetryError::InvalidRequestId { what: "empty" };
        assert_eq!(
            err.to_string(),
            "invalid request id: empty (1-64 characters of [A-Za-z0-9._-])"
        );
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("invalid request id"));
    }

    #[test]
    fn ids_format_without_adornment() {
        let id = RequestId::parse("abc").unwrap();
        assert_eq!(id.to_string(), "abc");
        assert_eq!(format!("{id:?}"), "RequestId(abc)");
    }
}
