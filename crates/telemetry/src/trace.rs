//! Completed-request traces: eight telescoping stage spans over one
//! monotonic timeline.

use crate::RequestId;
use std::time::Instant;

/// The eight serving stages of one request, in pipeline order. Used as
/// an index into [`RequestTrace::stage_ns`].
///
/// The spans *telescope*: each stage starts exactly where the previous
/// one ended, so per-stage nanoseconds are non-negative by construction
/// and sum exactly to [`RequestTrace::total_ns`]. A stage a request
/// never reached (a refusal, a decode error) records zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Reading the request body off the socket (the head is parsed
    /// before the trace clock starts, so idle keep-alive time between
    /// requests is never attributed).
    Parse = 0,
    /// Wire-codec decode of the uploaded image.
    Decode = 1,
    /// Admission: from decode-done to the request resting in the queue
    /// (includes any blocking wait for queue space).
    Submit = 2,
    /// Queue residence: from enqueue to a worker popping the request.
    QueueWait = 3,
    /// Dynamic batching: from pop to the coalesced batch sealing.
    BatchWait = 4,
    /// The planned forward itself.
    Infer = 5,
    /// Response encode: ticket wake-up, unpacking, and wire-codec
    /// encode of the result image.
    Encode = 6,
    /// Writing the response bytes to the socket.
    Write = 7,
}

/// Stage names, indexed by `Stage as usize` — the JSON keys of
/// `GET /v1/debug/traces` and the `stage` label values of the per-stage
/// histograms.
pub const STAGES: [&str; 8] =
    ["parse", "decode", "submit", "queue_wait", "batch_wait", "infer", "encode", "write"];

/// One completed request, as retained by the
/// [`FlightRecorder`](crate::FlightRecorder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The trace id echoed to the client.
    pub id: RequestId,
    /// Tenant lane the request was queued under, if tagged.
    pub tenant: Option<String>,
    /// Model the request was routed to (`None` on a single-model
    /// server).
    pub model: Option<String>,
    /// Final HTTP status of the response — refusals are traces too.
    pub status: u16,
    /// Per-stage nanoseconds, indexed by [`Stage`].
    pub stage_ns: [u64; 8],
    /// End-to-end nanoseconds (head parsed → response written); always
    /// the exact sum of `stage_ns`.
    pub total_ns: u64,
    /// Deadline slack in nanoseconds (budget minus total) for
    /// deadline-tagged requests: negative means the response was late.
    pub deadline_slack_ns: Option<i64>,
}

impl RequestTrace {
    /// A zeroed trace for `id` with final status `status`.
    #[must_use]
    pub fn new(id: RequestId, status: u16) -> Self {
        Self {
            id,
            tenant: None,
            model: None,
            status,
            stage_ns: [0; 8],
            total_ns: 0,
            deadline_slack_ns: None,
        }
    }

    /// Nanoseconds attributed to `stage`.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Render this trace as one hand-rolled JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"id\":");
        json_string(&mut out, self.id.as_str());
        out.push_str(",\"tenant\":");
        match &self.tenant {
            Some(t) => json_string(&mut out, t),
            None => out.push_str("null"),
        }
        out.push_str(",\"model\":");
        match &self.model {
            Some(m) => json_string(&mut out, m),
            None => out.push_str("null"),
        }
        out.push_str(&format!(",\"status\":{},\"total_ns\":{}", self.status, self.total_ns));
        out.push_str(",\"deadline_slack_ns\":");
        match self.deadline_slack_ns {
            Some(s) => out.push_str(&s.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"stages\":{");
        for (i, name) in STAGES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{}", self.stage_ns[i]));
        }
        out.push_str("}}");
        out
    }
}

/// Render a snapshot of traces as a JSON document:
/// `{"count":N,"traces":[...]}` — the body of
/// `GET /v1/debug/traces`.
#[must_use]
pub fn render_traces_json(traces: &[RequestTrace]) -> String {
    let mut out = String::with_capacity(64 + traces.len() * 256);
    out.push_str(&format!("{{\"count\":{},\"traces\":[", traces.len()));
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&trace.to_json());
    }
    out.push_str("]}");
    out
}

/// Escape-and-quote `s` into `out` (the minimal JSON string escapes:
/// quote, backslash, and control characters).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The runtime-side stage stamps, taken on the monotonic clock while a
/// request crosses the queue, and returned to the submitter on its
/// response so the front end can attribute queue wait, batch assembly,
/// and the forward without a side channel. `Instant`s are valid across
/// threads, so the submitting thread subtracts them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStamps {
    /// When the request came to rest in the submission queue.
    pub enqueued: Instant,
    /// When a worker popped it (end of queue wait).
    pub dequeued: Instant,
    /// When the coalesced batch sealed and dispatch began.
    pub sealed: Instant,
    /// When the forward for its batch finished.
    pub infer_done: Instant,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> RequestTrace {
        let mut t = RequestTrace::new(RequestId::parse("t-1").unwrap(), 200);
        t.stage_ns = [1, 2, 3, 4, 5, 6, 7, 8];
        t.total_ns = 36;
        t
    }

    #[test]
    fn stage_names_line_up_with_indices() {
        assert_eq!(STAGES[Stage::Parse as usize], "parse");
        assert_eq!(STAGES[Stage::QueueWait as usize], "queue_wait");
        assert_eq!(STAGES[Stage::Write as usize], "write");
        assert_eq!(trace().stage(Stage::Infer), 6);
    }

    #[test]
    fn traces_render_as_json() {
        let mut t = trace();
        t.tenant = Some("acme".into());
        t.deadline_slack_ns = Some(-5);
        let json = t.to_json();
        assert_eq!(
            json,
            "{\"id\":\"t-1\",\"tenant\":\"acme\",\"model\":null,\"status\":200,\
             \"total_ns\":36,\"deadline_slack_ns\":-5,\"stages\":{\"parse\":1,\"decode\":2,\
             \"submit\":3,\"queue_wait\":4,\"batch_wait\":5,\"infer\":6,\"encode\":7,\"write\":8}}"
        );
    }

    #[test]
    fn trace_documents_wrap_their_count() {
        let doc = render_traces_json(&[trace(), trace()]);
        assert!(doc.starts_with("{\"count\":2,\"traces\":["));
        assert!(doc.ends_with("]}"));
        assert_eq!(doc.matches("\"id\":\"t-1\"").count(), 2);
        assert_eq!(render_traces_json(&[]), "{\"count\":0,\"traces\":[]}");
    }

    #[test]
    fn json_strings_escape_hostile_content() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\u000ad\"");
    }
}
