//! The flight recorder: bounded rings of recent and slow request
//! traces, always on, cheap enough to sit on the response path.

use crate::RequestTrace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Fixed shard count: enough to keep response-path writers from
/// serializing on one lock without growing the snapshot cost.
const SHARDS: usize = 4;

/// Poison-tolerant lock (a panicking recorder user must not take the
/// debug endpoints down with it).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One bounded ring of `(sequence, trace)` pairs.
struct Ring {
    capacity: usize,
    traces: VecDeque<(u64, RequestTrace)>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self { capacity, traces: VecDeque::with_capacity(capacity) }
    }

    fn push(&mut self, seq: u64, trace: RequestTrace) {
        if self.capacity == 0 {
            return;
        }
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
        }
        self.traces.push_back((seq, trace));
    }
}

/// A mutex-sharded, fixed-capacity ring of completed request traces,
/// plus a separate ring that retains only requests slower than a
/// threshold — so one burst of fast traffic cannot flush the slow
/// outliers a postmortem actually needs.
///
/// [`record`](FlightRecorder::record) takes one shard lock (writers are
/// distributed round-robin); snapshots lock each shard briefly in turn
/// and splice by a global sequence number, so the returned order is
/// oldest → newest across shards.
pub struct FlightRecorder {
    shards: [Mutex<Ring>; SHARDS],
    slow: Mutex<Ring>,
    slow_threshold: Duration,
    next_shard: AtomicUsize,
    next_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` recent traces and, above
    /// `slow_threshold` end-to-end latency, up to `slow_capacity` slow
    /// traces.
    #[must_use]
    pub fn new(capacity: usize, slow_threshold: Duration, slow_capacity: usize) -> Self {
        // Spread the capacity over the shards; earlier shards take the
        // remainder so the total retained is exactly `capacity`.
        let shards = std::array::from_fn(|i| {
            Mutex::new(Ring::new(capacity / SHARDS + usize::from(i < capacity % SHARDS)))
        });
        Self {
            shards,
            slow: Mutex::new(Ring::new(slow_capacity)),
            slow_threshold,
            next_shard: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Total traces retained across shards when full.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| lock(s).capacity).sum()
    }

    /// The end-to-end latency above which a trace is also retained in
    /// the slow ring.
    #[must_use]
    pub fn slow_threshold(&self) -> Duration {
        self.slow_threshold
    }

    /// Record one completed request.
    pub fn record(&self, trace: RequestTrace) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if Duration::from_nanos(trace.total_ns) >= self.slow_threshold {
            lock(&self.slow).push(seq, trace.clone());
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
        lock(&self.shards[shard]).push(seq, trace);
    }

    /// Snapshot of the retained recent traces, oldest → newest.
    #[must_use]
    pub fn recent(&self) -> Vec<RequestTrace> {
        let mut all: Vec<(u64, RequestTrace)> = Vec::new();
        for shard in &self.shards {
            all.extend(lock(shard).traces.iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, t)| t).collect()
    }

    /// Snapshot of the retained slow traces, oldest → newest.
    #[must_use]
    pub fn slow(&self) -> Vec<RequestTrace> {
        lock(&self.slow).traces.iter().map(|(_, t)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    fn trace(tag: u32, total_ns: u64) -> RequestTrace {
        let mut t = RequestTrace::new(RequestId::parse(&format!("t-{tag}")).unwrap(), 200);
        t.total_ns = total_ns;
        t
    }

    #[test]
    fn recent_ring_wraps_at_capacity_under_a_2x_burst() {
        let recorder = FlightRecorder::new(8, Duration::from_secs(1), 4);
        assert_eq!(recorder.capacity(), 8);
        for i in 0..16 {
            recorder.record(trace(i, 1_000));
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 8, "the ring holds exactly its capacity");
        // Round-robin sharding keeps exactly the newest traces: the
        // burst is even over the shards, so each shard evicted its own
        // oldest half.
        let ids: Vec<&str> = recent.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, ["t-8", "t-9", "t-10", "t-11", "t-12", "t-13", "t-14", "t-15"]);
    }

    #[test]
    fn slow_ring_retains_outliers_fast_traffic_would_flush() {
        let recorder = FlightRecorder::new(4, Duration::from_millis(1), 4);
        recorder.record(trace(0, 2_000_000)); // 2 ms: slow
        for i in 1..9 {
            recorder.record(trace(i, 1_000)); // fast burst, 2x capacity
        }
        assert!(
            recorder.recent().iter().all(|t| t.total_ns == 1_000),
            "the fast burst flushed the outlier from the recent ring"
        );
        let slow = recorder.slow();
        assert_eq!(slow.len(), 1, "…but the slow ring kept it");
        assert_eq!(slow[0].id.as_str(), "t-0");
        // Exactly at the threshold counts as slow.
        recorder.record(trace(9, 1_000_000));
        assert_eq!(recorder.slow().len(), 2);
    }

    #[test]
    fn slow_ring_is_bounded_too() {
        let recorder = FlightRecorder::new(4, Duration::ZERO, 3);
        for i in 0..7 {
            recorder.record(trace(i, i as u64));
        }
        let slow = recorder.slow();
        assert_eq!(slow.len(), 3);
        assert_eq!(slow[0].id.as_str(), "t-4", "oldest slow traces evict first");
    }

    #[test]
    fn tiny_capacities_split_unevenly_but_exactly() {
        let recorder = FlightRecorder::new(3, Duration::from_secs(1), 1);
        for i in 0..30 {
            recorder.record(trace(i, 0));
        }
        assert_eq!(recorder.capacity(), 3);
        assert_eq!(recorder.recent().len(), 3);
    }

    #[test]
    fn snapshots_are_ordered_oldest_to_newest() {
        let recorder = FlightRecorder::new(16, Duration::from_secs(1), 4);
        for i in 0..10 {
            recorder.record(trace(i, 0));
        }
        let ids: Vec<String> =
            recorder.recent().iter().map(|t| t.id.as_str().to_string()).collect();
        let mut sorted = ids.clone();
        sorted.sort_by_key(|s| s[2..].parse::<u32>().unwrap());
        assert_eq!(ids, sorted);
    }
}
