//! Checkpoint payload: a trained network's identity plus its parameters.
//!
//! Layout after the common header:
//!
//! | field | encoding |
//! |---|---|
//! | arch name | u32 length + UTF-8 (an [`Arch::name`]) |
//! | channels, blocks, scale | u32 each |
//! | seed | u64 |
//! | method | u8 tag; tag 6 (SCALES) adds 3 bool bytes (lsf, spatial, channel) + u32 channel kernel |
//! | parameter count | u32 |
//! | each parameter | u32 rank + u32 dims + raw little-endian f32 data |
//!
//! Parameters are stored in [`Module::params`] order, which every network
//! in the zoo documents as stable. Loading rebuilds the network through
//! [`Arch::build`] (same config, same seed) and overwrites each parameter
//! bit-exactly, so the reloaded model's forwards are `f32::to_bits`
//! identical to the source model's.

use crate::wire::{Reader, Writer};
use crate::{read_header, write_header, ArtifactKind, Error, Result};
use scales_core::{Method, ScalesComponents};
use scales_models::{Arch, SrConfig, SrNetwork};
use scales_nn::Module as _;

fn write_method(w: &mut Writer, method: Method) {
    match method {
        Method::FullPrecision => w.put_u8(0),
        Method::Bicubic => w.put_u8(1),
        Method::Bam => w.put_u8(2),
        Method::Btm => w.put_u8(3),
        Method::E2fif => w.put_u8(4),
        Method::Bibert => w.put_u8(5),
        Method::Scales(c) => {
            w.put_u8(6);
            w.put_bool(c.lsf);
            w.put_bool(c.spatial);
            w.put_bool(c.channel);
            w.put_len(c.channel_kernel);
        }
    }
}

fn read_method(r: &mut Reader<'_>) -> Result<Method> {
    Ok(match r.take_u8()? {
        0 => Method::FullPrecision,
        1 => Method::Bicubic,
        2 => Method::Bam,
        3 => Method::Btm,
        4 => Method::E2fif,
        5 => Method::Bibert,
        6 => Method::Scales(ScalesComponents {
            lsf: r.take_bool()?,
            spatial: r.take_bool()?,
            channel: r.take_bool()?,
            channel_kernel: r.take_len()?,
        }),
        tag => return Err(Error::UnknownMethod(tag)),
    })
}

pub(crate) fn to_bytes(net: &dyn SrNetwork) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, ArtifactKind::Checkpoint);
    let config = net.config();
    w.put_str(net.arch().name());
    w.put_len(config.channels);
    w.put_len(config.blocks);
    w.put_len(config.scale);
    w.put_u64(config.seed);
    write_method(&mut w, config.method);
    let params = net.params();
    w.put_len(params.len());
    for p in &params {
        p.with_value(|t| w.put_tensor(t));
    }
    w.into_bytes()
}

pub(crate) fn from_bytes(bytes: &[u8]) -> Result<Box<dyn SrNetwork>> {
    let mut r = Reader::new(bytes);
    let kind = read_header(&mut r)?;
    if kind != ArtifactKind::Checkpoint {
        return Err(Error::WrongKind { expected: ArtifactKind::Checkpoint, found: kind });
    }
    let name = r.take_str()?;
    let arch = Arch::from_name(&name).ok_or_else(|| Error::UnknownArch(name.clone()))?;
    let extents_offset = r.offset();
    let channels = r.take_len()?;
    let blocks = r.take_len()?;
    let scale = r.take_len()?;
    // Sanity-bound the structural extents BEFORE building: `Arch::build`
    // allocates O(blocks · channels²) floats, so a corrupted field must
    // become a typed error here, never an allocation abort. Both the
    // individual fields and their allocation-governing product are
    // bounded (channels² · blocks ≤ 2²⁴ ≈ 500× the paper-scale config,
    // capping the rebuilt weights at ~1 GB) — far beyond any legitimate
    // file, far below an abort.
    const MAX_EXTENT: u64 = 4096;
    const MAX_VOLUME: u64 = 1 << 24;
    // u64 arithmetic, and the `||` short-circuit bounds both factors to
    // 4096 before the product is evaluated, so it is at most 2³⁶ — no
    // step can wrap, even on 32-bit-usize targets.
    let (c64, b64) = (channels as u64, blocks as u64);
    if c64 > MAX_EXTENT || b64 > MAX_EXTENT || c64 * c64 * b64 > MAX_VOLUME {
        return Err(Error::Corrupt {
            offset: extents_offset,
            what: format!("implausible network extents ({channels} channels, {blocks} blocks)"),
        });
    }
    let seed = r.take_u64()?;
    let method_offset = r.offset();
    let method = read_method(&mut r)?;
    if let Method::Scales(c) = method {
        // The channel branch asserts an odd kernel at construction; a
        // tampered even/zero/huge value must be a typed error here, not
        // a panic inside `Arch::build`.
        if c.channel_kernel as u64 > MAX_EXTENT
            || (c.channel && (c.channel_kernel == 0 || c.channel_kernel % 2 == 0))
        {
            return Err(Error::Corrupt {
                offset: method_offset,
                what: format!("implausible channel kernel {}", c.channel_kernel),
            });
        }
    }
    let config = SrConfig { channels, blocks, scale, method, seed };
    let net = arch.build(config)?;
    let params = net.params();
    let count = r.take_len()?;
    if count != params.len() {
        return Err(Error::ArchMismatch {
            arch: name,
            detail: format!(
                "file stores {count} parameter tensor(s), the rebuilt network has {}",
                params.len()
            ),
        });
    }
    // Decode every tensor before touching the network: a file that fails
    // halfway must not leave a half-overwritten model behind.
    let mut tensors = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        let t = r.take_tensor()?;
        if t.shape() != p.shape().as_slice() {
            return Err(Error::ArchMismatch {
                arch: name,
                detail: format!(
                    "parameter {i} has shape {:?}, the rebuilt network expects {:?}",
                    t.shape(),
                    p.shape()
                ),
            });
        }
        tensors.push(t);
    }
    r.finish()?;
    for (p, t) in params.iter().zip(tensors) {
        p.set_value(t);
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{checkpoint_from_bytes, checkpoint_to_bytes};
    use scales_autograd::Var;
    use scales_tensor::Tensor;

    fn trained_like(arch: Arch, method: Method) -> Box<dyn SrNetwork> {
        let net = arch
            .build(SrConfig { channels: 8, blocks: 1, scale: 2, method, seed: 77 })
            .unwrap();
        // Perturb every parameter off its seeded init so a round-trip that
        // silently kept the rebuilt init would be caught.
        for (i, p) in net.params().iter().enumerate() {
            p.update_value(|t| {
                for (j, v) in t.data_mut().iter_mut().enumerate() {
                    *v += ((i * 31 + j) as f32 * 0.37).sin() * 0.05;
                }
            });
        }
        net
    }

    fn probe(h: usize, w: usize) -> Tensor {
        Tensor::from_vec(
            (0..3 * h * w).map(|i| ((i as f32) * 0.17).sin() * 0.4 + 0.5).collect(),
            &[1, 3, h, w],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical_for_cnn_and_transformer() {
        for (arch, method) in
            [(Arch::SrResNet, Method::scales()), (Arch::SwinIr, Method::Bibert)]
        {
            let net = trained_like(arch, method);
            let bytes = checkpoint_to_bytes(net.as_ref());
            let back = checkpoint_from_bytes(&bytes).unwrap();
            assert_eq!(back.arch(), arch);
            assert_eq!(back.config(), net.config());
            let x = probe(8, 8);
            let a = net.forward(&Var::new(x.clone())).unwrap().value();
            let b = back.forward(&Var::new(x)).unwrap().value();
            assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{arch}");
            }
        }
    }

    #[test]
    fn every_method_encoding_round_trips() {
        let mut w = Writer::new();
        let methods = [
            Method::FullPrecision,
            Method::Bicubic,
            Method::Bam,
            Method::Btm,
            Method::E2fif,
            Method::Bibert,
            Method::scales(),
            Method::Scales(ScalesComponents::lsf_channel()),
        ];
        for m in methods {
            write_method(&mut w, m);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for m in methods {
            assert_eq!(read_method(&mut r).unwrap(), m);
        }
        r.finish().unwrap();
    }

    #[test]
    fn unknown_method_tag_is_typed() {
        assert!(matches!(read_method(&mut Reader::new(&[9u8])), Err(Error::UnknownMethod(9))));
    }

    #[test]
    fn arch_name_mismatch_is_typed() {
        // Re-label an SRResNet checkpoint as RDN: the parameter list no
        // longer fits the rebuilt network.
        let net = trained_like(Arch::SrResNet, Method::scales());
        let bytes = checkpoint_to_bytes(net.as_ref());
        let mut tampered = bytes[..12].to_vec();
        let mut w = Writer::new();
        w.put_str("RDN");
        tampered.extend_from_slice(&w.into_bytes());
        let old_name_end = 12 + 4 + "SRResNet".len();
        tampered.extend_from_slice(&bytes[old_name_end..]);
        assert!(matches!(
            checkpoint_from_bytes(&tampered),
            Err(Error::ArchMismatch { arch, .. }) if arch == "RDN"
        ));
    }

    #[test]
    fn unknown_arch_is_typed() {
        let net = trained_like(Arch::SrResNet, Method::scales());
        let bytes = checkpoint_to_bytes(net.as_ref());
        let mut tampered = bytes[..12].to_vec();
        let mut w = Writer::new();
        w.put_str("VDSR");
        tampered.extend_from_slice(&w.into_bytes());
        tampered.extend_from_slice(&bytes[12 + 4 + "SRResNet".len()..]);
        assert!(matches!(
            checkpoint_from_bytes(&tampered),
            Err(Error::UnknownArch(name)) if name == "VDSR"
        ));
    }

    #[test]
    fn implausible_extents_are_corrupt_not_an_allocation_abort() {
        let net = trained_like(Arch::SrResNet, Method::scales());
        let bytes = checkpoint_to_bytes(net.as_ref());
        // The channels u32 sits right after the header + name field.
        let channels_offset = 12 + 4 + "SRResNet".len();
        let mut tampered = bytes.clone();
        tampered[channels_offset..channels_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(checkpoint_from_bytes(&tampered), Err(Error::Corrupt { .. })));
        // Fields that pass individually but whose product would still
        // force a multi-terabyte build are rejected too.
        let mut product = bytes.clone();
        product[channels_offset..channels_offset + 4].copy_from_slice(&4096u32.to_le_bytes());
        product[channels_offset + 4..channels_offset + 8]
            .copy_from_slice(&4096u32.to_le_bytes());
        assert!(matches!(checkpoint_from_bytes(&product), Err(Error::Corrupt { .. })));
        // An even (or zero) channel kernel would panic inside the channel
        // branch's constructor; it must be Corrupt instead.
        let kernel_offset = channels_offset + 12 + 8 + 1 + 3; // extents, seed, tag, 3 bools
        for bad in [4u32, 0u32] {
            let mut tampered = bytes.clone();
            tampered[kernel_offset..kernel_offset + 4].copy_from_slice(&bad.to_le_bytes());
            assert!(
                matches!(checkpoint_from_bytes(&tampered), Err(Error::Corrupt { .. })),
                "kernel {bad}"
            );
        }
    }

    #[test]
    fn truncation_never_yields_a_partial_model() {
        let net = trained_like(Arch::SrResNet, Method::E2fif);
        let bytes = checkpoint_to_bytes(net.as_ref());
        for cut in [bytes.len() - 1, bytes.len() / 2, 13] {
            assert!(
                matches!(checkpoint_from_bytes(&bytes[..cut]), Err(Error::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let net = trained_like(Arch::SrResNet, Method::Btm);
        let mut bytes = checkpoint_to_bytes(net.as_ref());
        bytes.push(0);
        assert!(matches!(checkpoint_from_bytes(&bytes), Err(Error::TrailingBytes { .. })));
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let net = trained_like(Arch::SrResNet, Method::scales());
        let artifact = crate::artifact_to_bytes(&net.lower().unwrap());
        assert!(matches!(
            checkpoint_from_bytes(&artifact),
            Err(Error::WrongKind { expected: ArtifactKind::Checkpoint, found: ArtifactKind::Deployed })
        ));
    }
}
