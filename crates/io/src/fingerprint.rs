//! Content fingerprinting for artifacts: a dependency-free FNV-1a
//! 64-bit hasher shared by every layer that needs a cheap, stable
//! identity for model bytes — the artifact cache in `scales-train`
//! (network identity + parameter bits) and the model router in
//! `scales-router` (serialized artifact bytes).
//!
//! FNV-1a is not cryptographic; it is a *change detector*. Equal
//! fingerprints across adversarial inputs are not a guarantee anywhere
//! in this workspace — callers use fingerprints to invalidate caches and
//! to label model versions, never to authenticate them.

/// Incremental FNV-1a 64-bit hasher.
///
/// Two mixing granularities are offered on purpose:
///
/// * [`Fnv1a::write`] folds bytes one at a time — the standard FNV-1a
///   byte stream, right for strings and raw buffers;
/// * [`Fnv1a::write_u64`] folds a whole 64-bit word in one step — what
///   the historical `scales-train` parameter fingerprint does with each
///   `f32::to_bits` value, kept so existing on-disk cache entries stay
///   valid across the refactor that moved the hash here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self { state: OFFSET_BASIS }
    }

    /// Fold `bytes` into the state, one byte at a time (standard FNV-1a).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Fold one whole 64-bit word into the state in a single mix step.
    pub fn write_u64(&mut self, word: u64) {
        self.state ^= word;
        self.state = self.state.wrapping_mul(PRIME);
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64-bit hash of a byte buffer — the fingerprint the
/// router stamps on each loaded artifact version (over the serialized
/// artifact bytes, so any change to weights, graph or header changes it).
#[must_use]
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_and_one_shot_agree() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fingerprint(b"foobar"));
    }

    #[test]
    fn whole_word_mixing_differs_from_byte_mixing() {
        // write_u64 folds the word in one step; writing its bytes folds
        // eight. Both must be deterministic, and they must not collide
        // for a value with high bytes set.
        let mut word = Fnv1a::new();
        word.write_u64(0x0102_0304_0506_0708);
        let mut bytes = Fnv1a::new();
        bytes.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_ne!(word.finish(), bytes.finish());
        // For a single low byte the two schemes coincide by construction.
        let mut w = Fnv1a::new();
        w.write_u64(0x42);
        let mut b = Fnv1a::new();
        b.write(&[0x42]);
        assert_eq!(w.finish(), b.finish());
    }

    #[test]
    fn fingerprints_detect_single_bit_changes() {
        let a = fingerprint(&[0u8; 64]);
        let mut flipped = [0u8; 64];
        flipped[63] = 1;
        assert_ne!(a, fingerprint(&flipped));
    }
}
