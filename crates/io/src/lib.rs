//! # scales-io
//!
//! Versioned on-disk model artifacts for the SCALES reproduction — the
//! persistence layer between training and serving. Two artifact kinds
//! share one header:
//!
//! * a **checkpoint** ([`save_checkpoint`] / [`load_checkpoint`]): the
//!   f32 parameters of a trained [`SrNetwork`] plus the
//!   (architecture, config) pair needed to rebuild it through the
//!   [`Arch`](scales_models::Arch) registry;
//! * a **deployed artifact** ([`save_artifact`] / [`load_artifact`]): the
//!   whole lowered [`DeployedNetwork`] op graph, bit-packed binary
//!   weights included, ready to serve with no training stack and no
//!   re-lowering.
//!
//! The format is hand-rolled little-endian binary (no serde — the build
//! environment is offline) and **bit-exact**: a reloaded model serves
//! outputs with identical `f32::to_bits` to its in-memory source, a
//! contract enforced across the whole method registry by
//! `tests/serialize.rs`.
//!
//! ## Layout
//!
//! Every file starts with a 12-byte header:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 8 | magic `b"SCALESIO"` |
//! | 8 | 2 | format version (little-endian u16, currently 1) |
//! | 10 | 1 | kind: 1 = checkpoint, 2 = deployed artifact |
//! | 11 | 1 | reserved (0) |
//!
//! then a kind-specific payload (documented on the `checkpoint` and
//! `artifact` modules). All integers are little-endian; `f32` values are stored
//! as raw IEEE-754 bytes; bit-packed binary weights are stored as their
//! `u64` words. Loaders reject wrong magic, versions from the future,
//! truncated payloads and trailing garbage with a typed [`Error`] — a
//! partial read is never accepted.
//!
//! ## Serving straight from disk
//!
//! `scales_serve::EngineBuilder::model_path` sniffs the header
//! ([`read_kind`]) and loads whichever kind the file holds (shown as
//! text: `scales-serve` sits above this crate):
//!
//! ```text
//! let engine = scales_serve::Engine::builder().model_path("model.sca")?.build()?;
//! ```

mod artifact;
mod checkpoint;
mod fingerprint;
mod wire;

pub use fingerprint::{fingerprint, Fnv1a};

use scales_models::{DeployedNetwork, SrNetwork};
use scales_tensor::TensorError;
use std::path::Path;

/// File magic: the first 8 bytes of every artifact.
pub const MAGIC: [u8; 8] = *b"SCALESIO";

/// The format version this build writes and the newest it can read.
/// Older versions remain readable for as long as their decoders stay
/// in-tree; newer versions are rejected with
/// [`Error::UnsupportedVersion`].
pub const FORMAT_VERSION: u16 = 1;

/// Which payload an artifact file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Trained f32 parameters + (arch, config); rebuilt through the
    /// registry at load.
    Checkpoint,
    /// A lowered [`DeployedNetwork`] op graph with bit-packed weights.
    Deployed,
}

impl ArtifactKind {
    fn tag(self) -> u8 {
        match self {
            ArtifactKind::Checkpoint => 1,
            ArtifactKind::Deployed => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(ArtifactKind::Checkpoint),
            2 => Some(ArtifactKind::Deployed),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArtifactKind::Checkpoint => "checkpoint",
            ArtifactKind::Deployed => "deployed artifact",
        })
    }
}

/// Everything that can go wrong saving or loading a model artifact.
///
/// Loaders never panic and never accept a partial read: every failure
/// mode of a hostile or truncated file maps to one of these variants.
#[derive(Debug)]
pub enum Error {
    /// Filesystem failure (open, read, write).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a SCALES artifact.
    BadMagic {
        /// The first bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// The file was written by a newer format than this build reads.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Newest version this build supports.
        supported: u16,
    },
    /// The kind byte is not a known [`ArtifactKind`].
    UnknownKind(u8),
    /// The file holds the other artifact kind than the caller asked for.
    WrongKind {
        /// Kind the loader expected.
        expected: ArtifactKind,
        /// Kind stamped in the file.
        found: ArtifactKind,
    },
    /// The payload ends before a field it promises.
    Truncated {
        /// Byte offset of the read that failed.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Total payload length.
        len: usize,
    },
    /// The payload decoded cleanly but bytes remain after it.
    TrailingBytes {
        /// Bytes consumed by the decoder.
        consumed: usize,
        /// Total file length.
        len: usize,
    },
    /// A checkpoint names an architecture the registry does not know.
    UnknownArch(String),
    /// A checkpoint carries a method tag this build does not know.
    UnknownMethod(u8),
    /// The stored parameters do not fit the network the (arch, config)
    /// pair rebuilds — the file is internally inconsistent.
    ArchMismatch {
        /// Architecture named by the file.
        arch: String,
        /// What disagreed.
        detail: String,
    },
    /// A structurally invalid payload (bad tag, bad graph wiring, bad
    /// tensor geometry, …).
    Corrupt {
        /// Byte offset where decoding failed.
        offset: usize,
        /// What was malformed.
        what: String,
    },
    /// Rebuilding the model from decoded parts failed.
    Model(TensorError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "artifact I/O error: {e}"),
            Error::BadMagic { found } => {
                write!(f, "not a SCALES artifact (magic {found:02x?}, expected {MAGIC:02x?})")
            }
            Error::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is outside the supported range 1..={supported}"
            ),
            Error::UnknownKind(tag) => write!(f, "unknown artifact kind tag {tag}"),
            Error::WrongKind { expected, found } => {
                write!(f, "expected a {expected}, found a {found}")
            }
            Error::Truncated { offset, needed, len } => write!(
                f,
                "truncated artifact: needed {needed} byte(s) at offset {offset} of {len}"
            ),
            Error::TrailingBytes { consumed, len } => {
                write!(f, "artifact has {} trailing byte(s) after the payload", len - consumed)
            }
            Error::UnknownArch(name) => {
                write!(f, "checkpoint names unknown architecture {name:?}")
            }
            Error::UnknownMethod(tag) => write!(f, "checkpoint carries unknown method tag {tag}"),
            Error::ArchMismatch { arch, detail } => {
                write!(f, "checkpoint does not fit a rebuilt {arch}: {detail}")
            }
            Error::Corrupt { offset, what } => {
                write!(f, "corrupt artifact at offset {offset}: {what}")
            }
            Error::Model(e) => write!(f, "rebuilding the model failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<TensorError> for Error {
    fn from(e: TensorError) -> Self {
        Error::Model(e)
    }
}

/// Result alias for artifact operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Publish `bytes` at `path` atomically (write a sibling temp file, then
/// rename): concurrent readers — e.g. another process building an engine
/// with `model_path` while this one saves — observe the old file,
/// nothing, or the complete new artifact, never a torn write.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp-{}-{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let publish = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = publish {
        let _ = std::fs::remove_file(&tmp);
        return Err(Error::Io(e));
    }
    Ok(())
}

pub(crate) fn write_header(w: &mut wire::Writer, kind: ArtifactKind) {
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(kind.tag());
    w.put_u8(0);
}

/// Decode and validate the 12-byte header, returning the stored kind.
pub(crate) fn read_header(r: &mut wire::Reader<'_>) -> Result<ArtifactKind> {
    let magic = r.take(MAGIC.len()).map_err(|_| Error::BadMagic {
        // A file shorter than the magic cannot be a SCALES artifact
        // either; report it the same way.
        found: Vec::new(),
    })?;
    if magic != MAGIC {
        return Err(Error::BadMagic { found: magic.to_vec() });
    }
    let version = r.take_u16()?;
    // Version 0 was never written; only 1..=FORMAT_VERSION are valid.
    if version == 0 || version > FORMAT_VERSION {
        return Err(Error::UnsupportedVersion { found: version, supported: FORMAT_VERSION });
    }
    let kind_tag = r.take_u8()?;
    let kind = ArtifactKind::from_tag(kind_tag).ok_or(Error::UnknownKind(kind_tag))?;
    let _reserved = r.take_u8()?;
    Ok(kind)
}

/// Sniff which artifact kind a byte buffer holds (header only).
///
/// # Errors
///
/// Returns the header's validation errors: [`Error::BadMagic`],
/// [`Error::UnsupportedVersion`], [`Error::UnknownKind`] or
/// [`Error::Truncated`].
pub fn sniff_kind(bytes: &[u8]) -> Result<ArtifactKind> {
    read_header(&mut wire::Reader::new(bytes))
}

/// Sniff which artifact kind a file holds (reads the header only).
///
/// # Errors
///
/// Propagates I/O failures and the [`sniff_kind`] validation errors.
pub fn read_kind(path: impl AsRef<Path>) -> Result<ArtifactKind> {
    let mut head = [0u8; 12];
    let mut file = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < head.len() {
        let n = std::io::Read::read(&mut file, &mut head[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    sniff_kind(&head[..filled])
}

/// Serialize a trained network's checkpoint to bytes.
#[must_use]
pub fn checkpoint_to_bytes(net: &dyn SrNetwork) -> Vec<u8> {
    checkpoint::to_bytes(net)
}

/// Decode a checkpoint from bytes, rebuilding the network through the
/// architecture registry.
///
/// # Errors
///
/// Returns a typed [`Error`] for every malformed input (see the variant
/// docs).
pub fn checkpoint_from_bytes(bytes: &[u8]) -> Result<Box<dyn SrNetwork>> {
    checkpoint::from_bytes(bytes)
}

/// Save a trained network's checkpoint: its f32 parameters plus the
/// (architecture, config) pair that rebuilds it. The write is atomic
/// (temp file + rename), so concurrent loaders never see a torn file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_checkpoint(path: impl AsRef<Path>, net: &dyn SrNetwork) -> Result<()> {
    write_atomic(path.as_ref(), &checkpoint_to_bytes(net))
}

/// Load a checkpoint saved by [`save_checkpoint`]. The network is rebuilt
/// through [`Arch::build`](scales_models::Arch::build) and its parameters
/// overwritten bit-exactly, so its forwards match the saved model's
/// `f32::to_bits` for `f32::to_bits`.
///
/// # Errors
///
/// Returns a typed [`Error`] for I/O failures and every malformed input.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<Box<dyn SrNetwork>> {
    checkpoint_from_bytes(&std::fs::read(path)?)
}

/// Serialize a lowered deployment graph to bytes.
#[must_use]
pub fn artifact_to_bytes(net: &DeployedNetwork) -> Vec<u8> {
    artifact::to_bytes(net)
}

/// Decode a deployed artifact from bytes.
///
/// # Errors
///
/// Returns a typed [`Error`] for every malformed input.
pub fn artifact_from_bytes(bytes: &[u8]) -> Result<DeployedNetwork> {
    artifact::from_bytes(bytes)
}

/// Save a lowered [`DeployedNetwork`] — the op graph and its bit-packed
/// binary weights — as a self-contained deployable artifact. The write
/// is atomic (temp file + rename), so concurrent loaders never see a
/// torn file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_artifact(path: impl AsRef<Path>, net: &DeployedNetwork) -> Result<()> {
    write_atomic(path.as_ref(), &artifact_to_bytes(net))
}

/// Load a deployed artifact saved by [`save_artifact`]. No training
/// stack, factory seed or re-lowering is involved: the packed graph is
/// reassembled exactly as serialized and serves bit-identical outputs.
///
/// # Errors
///
/// Returns a typed [`Error`] for I/O failures and every malformed input.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<DeployedNetwork> {
    artifact_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_both_kinds() {
        for kind in [ArtifactKind::Checkpoint, ArtifactKind::Deployed] {
            let mut w = wire::Writer::new();
            write_header(&mut w, kind);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), 12);
            assert_eq!(sniff_kind(&bytes).unwrap(), kind);
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Vec::new();
        let mut w = wire::Writer::new();
        write_header(&mut w, ArtifactKind::Checkpoint);
        bytes.extend_from_slice(&w.into_bytes());
        bytes[0] = b'X';
        assert!(matches!(sniff_kind(&bytes), Err(Error::BadMagic { .. })));
        // Shorter than the magic: same classification.
        assert!(matches!(sniff_kind(b"SC"), Err(Error::BadMagic { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut w = wire::Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u16(FORMAT_VERSION + 1);
        w.put_u8(1);
        w.put_u8(0);
        let err = sniff_kind(&w.into_bytes()).unwrap_err();
        assert!(matches!(
            err,
            Error::UnsupportedVersion { found, supported }
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn version_zero_is_rejected() {
        let mut w = wire::Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u16(0);
        w.put_u8(1);
        w.put_u8(0);
        assert!(matches!(
            sniff_kind(&w.into_bytes()),
            Err(Error::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut w = wire::Writer::new();
        w.put_bytes(&MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u8(9);
        w.put_u8(0);
        assert!(matches!(sniff_kind(&w.into_bytes()), Err(Error::UnknownKind(9))));
    }

    #[test]
    fn error_is_a_std_error_with_sources() {
        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        let dyn_err: &dyn std::error::Error = &io;
        assert!(dyn_err.source().is_some());
        assert!(dyn_err.to_string().contains("gone"));
        let plain: &dyn std::error::Error = &Error::UnknownArch("VDSR".into());
        assert!(plain.source().is_none());
        assert!(plain.to_string().contains("VDSR"));
    }
}
