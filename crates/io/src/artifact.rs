//! Deployed-artifact payload: a whole lowered op graph, packed weights
//! included.
//!
//! Layout after the common header:
//!
//! | field | encoding |
//! |---|---|
//! | network name | u32 length + UTF-8 |
//! | scale | u32 |
//! | op count, output value id | u32 each |
//! | each op | u8 tag + operands (value ids as u32) + payload |
//!
//! Op payloads bottom out in two building blocks. A **float conv** is
//! `stride + padding (u32 each) + weight tensor + bias flag byte (+ bias
//! tensor)`. A **packed binary conv** is `out/in channels + kernel +
//! stride + padding (u32 each) + per-channel f32 scales + the raw u64
//! weight words` in the `(oc, ky, kx, channel-word)` layout of
//! [`BinaryConv2d::packed_weights`]. Nothing is re-derived at load: the
//! packed words, scales and folded thresholds are reassembled exactly as
//! serialized, so a loaded artifact serves `f32::to_bits`-identical
//! outputs with no training stack present.
//!
//! Graph wiring is validated while decoding: op `i` may only reference
//! values `0..=i` (the SSA property of the builder), and the output id
//! must name a produced value. Violations are [`Error::Corrupt`].

use crate::wire::{Reader, Writer};
use crate::{read_header, write_header, ArtifactKind, Error, Result};
use scales_binary::BinaryConv2d;
use scales_core::{DeployedBodyConv, DeployedScalesConv2d, FloatConv2d};
use scales_models::deploy::DeployedChannelAttention;
use scales_models::{DeployedNetwork, DeployedNetworkBuilder, DeployedOp};
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::Tensor;

/// Upper bound on every geometry field of the format that multiplies
/// into an output extent or allocation (network scale, `PixelShuffle`
/// factor, `BicubicUp` scale, conv stride/padding). Legitimate networks
/// use single-digit values; the bound keeps a corrupt field from loading
/// cleanly and then aborting the serving process on a huge allocation at
/// the first forward.
const MAX_FACTOR: usize = 64;

fn take_factor(r: &mut Reader<'_>, what: &str) -> Result<usize> {
    let offset = r.offset();
    let v = r.take_len()?;
    if v == 0 || v > MAX_FACTOR {
        return Err(Error::Corrupt { offset, what: format!("implausible {what} {v}") });
    }
    Ok(v)
}

fn take_spec(r: &mut Reader<'_>) -> Result<Conv2dSpec> {
    let stride = take_factor(r, "conv stride")?;
    let offset = r.offset();
    let padding = r.take_len()?;
    if padding > MAX_FACTOR {
        return Err(Error::Corrupt { offset, what: format!("implausible conv padding {padding}") });
    }
    Ok(Conv2dSpec { stride, padding })
}

fn write_float_conv(w: &mut Writer, conv: &FloatConv2d) {
    w.put_len(conv.spec().stride);
    w.put_len(conv.spec().padding);
    w.put_tensor(conv.weight());
    match conv.bias() {
        Some(b) => {
            w.put_bool(true);
            w.put_tensor(b);
        }
        None => w.put_bool(false),
    }
}

/// A per-output-channel broadcast tensor (conv bias, BN gain/shift) must
/// be exactly `[1, OC, 1, 1]`: any other broadcastable shape would blow
/// the activation up at the first forward instead of failing at load.
fn check_channel_broadcast(t: &Tensor, oc: usize, what: &str, offset: usize) -> Result<()> {
    if t.shape() != [1, oc, 1, 1] {
        return Err(Error::Corrupt {
            offset,
            what: format!("{what} has shape {:?}, expected [1, {oc}, 1, 1]", t.shape()),
        });
    }
    Ok(())
}

fn read_float_conv(r: &mut Reader<'_>) -> Result<FloatConv2d> {
    let offset = r.offset();
    let spec = take_spec(r)?;
    let weight = r.take_tensor()?;
    let bias = if r.take_bool()? { Some(r.take_tensor()?) } else { None };
    if let Some(b) = &bias {
        if weight.rank() == 4 {
            check_channel_broadcast(b, weight.shape()[0], "float conv bias", offset)?;
        }
    }
    FloatConv2d::new(weight, bias, spec)
        .map_err(|e| Error::Corrupt { offset, what: format!("float conv: {e}") })
}

fn write_binary_conv(w: &mut Writer, conv: &BinaryConv2d) {
    w.put_len(conv.out_channels());
    w.put_len(conv.in_channels());
    w.put_len(conv.kernel());
    w.put_len(conv.spec().stride);
    w.put_len(conv.spec().padding);
    w.put_f32s(conv.scales());
    w.put_u64s(conv.packed_weights());
}

fn read_binary_conv(r: &mut Reader<'_>) -> Result<BinaryConv2d> {
    let offset = r.offset();
    let oc = r.take_len()?;
    let ic = r.take_len()?;
    let kernel = r.take_len()?;
    let spec = take_spec(r)?;
    let scales = r.take_f32s()?;
    let packed = r.take_u64s()?;
    BinaryConv2d::from_packed_parts(oc, ic, kernel, spec, packed, scales)
        .map_err(|e| Error::Corrupt { offset, what: format!("packed binary conv: {e}") })
}

fn write_body(w: &mut Writer, body: &DeployedBodyConv) {
    match body {
        DeployedBodyConv::Float(conv) => {
            w.put_u8(0);
            write_float_conv(w, conv);
        }
        DeployedBodyConv::Scales(conv) => {
            w.put_u8(1);
            write_binary_conv(w, conv.conv());
            w.put_f32s(conv.beta());
            match conv.spatial() {
                Some((map, bias)) => {
                    w.put_bool(true);
                    w.put_tensor(map);
                    w.put_f32(bias);
                }
                None => w.put_bool(false),
            }
            match conv.channel() {
                Some(kernel) => {
                    w.put_bool(true);
                    w.put_tensor(kernel);
                }
                None => w.put_bool(false),
            }
            w.put_bool(conv.skip());
            w.put_len(conv.in_channels());
        }
        DeployedBodyConv::E2fif { conv, gamma, beta, skip } => {
            w.put_u8(2);
            write_binary_conv(w, conv);
            w.put_tensor(gamma);
            w.put_tensor(beta);
            w.put_bool(*skip);
        }
        DeployedBodyConv::Btm { conv, skip } => {
            w.put_u8(3);
            write_binary_conv(w, conv);
            w.put_bool(*skip);
        }
        DeployedBodyConv::Bam { conv, skip } => {
            w.put_u8(4);
            write_binary_conv(w, conv);
            w.put_bool(*skip);
        }
        DeployedBodyConv::Basic { conv, skip } => {
            w.put_u8(5);
            write_binary_conv(w, conv);
            w.put_bool(*skip);
        }
    }
}

fn read_body(r: &mut Reader<'_>) -> Result<DeployedBodyConv> {
    let offset = r.offset();
    Ok(match r.take_u8()? {
        0 => DeployedBodyConv::Float(read_float_conv(r)?),
        1 => {
            let conv = read_binary_conv(r)?;
            let beta = r.take_f32s()?;
            let spatial =
                if r.take_bool()? { Some((r.take_tensor()?, r.take_f32()?)) } else { None };
            let channel = if r.take_bool()? { Some(r.take_tensor()?) } else { None };
            let skip = r.take_bool()?;
            let in_channels = r.take_len()?;
            DeployedBodyConv::Scales(
                DeployedScalesConv2d::from_parts(conv, beta, spatial, channel, skip, in_channels)
                    .map_err(|e| Error::Corrupt { offset, what: format!("scales conv: {e}") })?,
            )
        }
        2 => {
            let conv = read_binary_conv(r)?;
            let gamma = r.take_tensor()?;
            let beta = r.take_tensor()?;
            check_channel_broadcast(&gamma, conv.out_channels(), "E2FIF BN gamma", offset)?;
            check_channel_broadcast(&beta, conv.out_channels(), "E2FIF BN beta", offset)?;
            DeployedBodyConv::E2fif { conv, gamma, beta, skip: r.take_bool()? }
        }
        3 => DeployedBodyConv::Btm { conv: read_binary_conv(r)?, skip: r.take_bool()? },
        4 => DeployedBodyConv::Bam { conv: read_binary_conv(r)?, skip: r.take_bool()? },
        5 => DeployedBodyConv::Basic { conv: read_binary_conv(r)?, skip: r.take_bool()? },
        tag => {
            return Err(Error::Corrupt { offset, what: format!("unknown body conv tag {tag}") })
        }
    })
}

fn write_op(w: &mut Writer, op: &DeployedOp) {
    match op {
        DeployedOp::FloatConv { conv, src } => {
            w.put_u8(0);
            w.put_len(*src);
            write_float_conv(w, conv);
        }
        DeployedOp::Body { conv, src } => {
            w.put_u8(1);
            w.put_len(*src);
            write_body(w, conv);
        }
        DeployedOp::Relu { src } => {
            w.put_u8(2);
            w.put_len(*src);
        }
        DeployedOp::Prelu { slope, src } => {
            w.put_u8(3);
            w.put_len(*src);
            w.put_f32(*slope);
        }
        DeployedOp::Add { lhs, rhs } => {
            w.put_u8(4);
            w.put_len(*lhs);
            w.put_len(*rhs);
        }
        DeployedOp::Concat { srcs } => {
            w.put_u8(5);
            w.put_len(srcs.len());
            for &s in srcs {
                w.put_len(s);
            }
        }
        DeployedOp::ChannelAttention { ca, src } => {
            w.put_u8(6);
            w.put_len(*src);
            write_float_conv(w, ca.down());
            write_float_conv(w, ca.up());
        }
        DeployedOp::PixelShuffle { factor, src } => {
            w.put_u8(7);
            w.put_len(*src);
            w.put_len(*factor);
        }
        DeployedOp::BicubicUp { scale, src } => {
            w.put_u8(8);
            w.put_len(*src);
            w.put_len(*scale);
        }
    }
}

/// Read one op. `produced` is how many values exist so far (input
/// included), bounding every operand reference.
fn read_op(r: &mut Reader<'_>, produced: usize) -> Result<DeployedOp> {
    let offset = r.offset();
    let tag = r.take_u8()?;
    let take_value = |r: &mut Reader<'_>| -> Result<usize> {
        let offset = r.offset();
        let id = r.take_len()?;
        if id >= produced {
            return Err(Error::Corrupt {
                offset,
                what: format!("op reads value {id} before it is produced (have {produced})"),
            });
        }
        Ok(id)
    };
    Ok(match tag {
        0 => {
            let src = take_value(r)?;
            DeployedOp::FloatConv { conv: read_float_conv(r)?, src }
        }
        1 => {
            let src = take_value(r)?;
            DeployedOp::Body { conv: Box::new(read_body(r)?), src }
        }
        2 => DeployedOp::Relu { src: take_value(r)? },
        3 => {
            let src = take_value(r)?;
            let slope = r.take_f32()?;
            DeployedOp::Prelu { slope, src }
        }
        4 => DeployedOp::Add { lhs: take_value(r)?, rhs: take_value(r)? },
        5 => {
            let n = r.take_len()?;
            if n == 0 {
                return Err(Error::Corrupt { offset, what: "empty concat".into() });
            }
            let mut srcs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                srcs.push(take_value(r)?);
            }
            DeployedOp::Concat { srcs }
        }
        6 => {
            let src = take_value(r)?;
            let down = read_float_conv(r)?;
            let up = read_float_conv(r)?;
            DeployedOp::ChannelAttention { ca: DeployedChannelAttention::new(down, up), src }
        }
        7 => {
            let src = take_value(r)?;
            DeployedOp::PixelShuffle { factor: take_factor(r, "pixel-shuffle factor")?, src }
        }
        8 => {
            let src = take_value(r)?;
            DeployedOp::BicubicUp { scale: take_factor(r, "bicubic upscale")?, src }
        }
        tag => return Err(Error::Corrupt { offset, what: format!("unknown op tag {tag}") }),
    })
}

pub(crate) fn to_bytes(net: &DeployedNetwork) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, ArtifactKind::Deployed);
    w.put_str(net.name());
    w.put_len(net.scale());
    w.put_len(net.num_ops());
    w.put_len(net.output());
    for op in net.ops() {
        write_op(&mut w, op);
    }
    w.into_bytes()
}

pub(crate) fn from_bytes(bytes: &[u8]) -> Result<DeployedNetwork> {
    let mut r = Reader::new(bytes);
    let kind = read_header(&mut r)?;
    if kind != ArtifactKind::Deployed {
        return Err(Error::WrongKind { expected: ArtifactKind::Deployed, found: kind });
    }
    let name = r.take_str()?;
    let scale = take_factor(&mut r, "network scale")?;
    let op_count = r.take_len()?;
    // Every op costs at least a tag byte, so an op count beyond the
    // remaining payload is corrupt — checked before it can size any
    // allocation below.
    if op_count > bytes.len() {
        return Err(Error::Corrupt {
            offset: r.offset(),
            what: format!("op count {op_count} exceeds the {}-byte file", bytes.len()),
        });
    }
    let output = r.take_len()?;
    // Value 0 is the raw network input; a graph must return something an
    // op produced (ids 1..=op_count).
    if output == 0 || output > op_count {
        return Err(Error::Corrupt {
            offset: r.offset(),
            what: format!("output value {output} of a {op_count}-op graph"),
        });
    }
    let mut builder = DeployedNetworkBuilder::new(&name, scale);
    // Per-field bounds are not enough on their own: extents compose
    // *multiplicatively* across ops, so a small file could chain
    // shuffle/bicubic ops — or concat one value thousands of times —
    // into an astronomically large first-forward allocation. Cap both
    // composition axes: the graph-total upsample product (legit
    // networks: tail shuffle × bicubic skip ≤ scale² ≤ 16), and each
    // value's channel width, tracked through the graph with the real
    // conv output widths (which are pinned by weights physically present
    // in the file). Legit graphs top out around blocks × body channels.
    const MAX_WIDTH: u64 = 65536;
    let mut upsample_product: u64 = 1;
    let mut width: Vec<u64> = Vec::with_capacity((op_count + 1).min(65536));
    width.push(4); // the network input (RGB, rounded up)
    for i in 0..op_count {
        // Raw push (not the builder conveniences, which elide identity
        // ops) so value ids land exactly where the writer recorded them.
        let offset = r.offset();
        let op = read_op(&mut r, i + 1)?;
        let w = match &op {
            DeployedOp::FloatConv { conv, .. } => conv.out_channels() as u64,
            DeployedOp::Body { conv, .. } => conv.out_channels() as u64,
            DeployedOp::Relu { src }
            | DeployedOp::Prelu { src, .. }
            | DeployedOp::BicubicUp { src, .. } => width[*src],
            // The CA gate broadcasts against its input, so the value can
            // be as wide as the excite conv's output — count that too.
            DeployedOp::ChannelAttention { ca, src } => {
                width[*src].max(ca.up().out_channels() as u64)
            }
            DeployedOp::PixelShuffle { factor, src } => {
                (width[*src] / (*factor as u64 * *factor as u64)).max(1)
            }
            DeployedOp::Add { lhs, rhs } => width[*lhs].max(width[*rhs]),
            DeployedOp::Concat { srcs } => {
                srcs.iter().fold(0u64, |acc, &s| acc.saturating_add(width[s]))
            }
        };
        if w > MAX_WIDTH {
            return Err(Error::Corrupt {
                offset,
                what: format!("graph channel width exceeds {MAX_WIDTH} (runaway concat fan-in)"),
            });
        }
        width.push(w);
        if let DeployedOp::PixelShuffle { factor, .. } | DeployedOp::BicubicUp { scale: factor, .. } =
            &op
        {
            upsample_product = upsample_product.saturating_mul(*factor as u64);
            if upsample_product > MAX_FACTOR as u64 {
                return Err(Error::Corrupt {
                    offset,
                    what: format!(
                        "graph upsampling product exceeds {MAX_FACTOR} (chained upsample ops)"
                    ),
                });
            }
        }
        builder.push(op);
    }
    r.finish()?;
    Ok(builder.finish(output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{artifact_from_bytes, artifact_to_bytes};
    use scales_core::Method;
    use scales_models::{rcan, rdn, srresnet, SrConfig, SrNetwork};
    use scales_tensor::Tensor;

    fn probe(h: usize, w: usize) -> Tensor {
        Tensor::from_vec(
            (0..3 * h * w).map(|i| ((i as f32) * 0.19).cos() * 0.4 + 0.5).collect(),
            &[1, 3, h, w],
        )
        .unwrap()
    }

    fn assert_round_trip(net: &dyn SrNetwork, label: &str) {
        let deployed = net.lower().unwrap();
        let bytes = artifact_to_bytes(&deployed);
        let back = artifact_from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), deployed.name(), "{label}");
        assert_eq!(back.scale(), deployed.scale(), "{label}");
        assert_eq!(back.num_ops(), deployed.num_ops(), "{label}");
        assert_eq!(back.packed_layers(), deployed.packed_layers(), "{label}");
        let x = probe(8, 8);
        let a = deployed.forward(&x).unwrap();
        let b = back.forward(&x).unwrap();
        assert_eq!(a.shape(), b.shape(), "{label}");
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}");
        }
    }

    #[test]
    fn srresnet_artifact_round_trips_bit_exactly() {
        // SCALES body: exercises the packed conv, folded β, both
        // re-scaling branches, pixel shuffle and the bicubic skip.
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 21,
        })
        .unwrap();
        assert_round_trip(&net, "SRResNet/SCALES");
    }

    #[test]
    fn rcan_artifact_round_trips_bit_exactly() {
        // Exercises channel attention and ReLU ops.
        let net = rcan(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::FullPrecision,
            seed: 22,
        })
        .unwrap();
        assert_round_trip(&net, "RCAN/FP");
    }

    #[test]
    fn rdn_artifact_round_trips_bit_exactly() {
        // Exercises concat fan-in and float fusion convs.
        let net = rdn(SrConfig {
            channels: 8,
            blocks: 2,
            scale: 2,
            method: Method::E2fif,
            seed: 23,
        })
        .unwrap();
        assert_round_trip(&net, "RDN/E2FIF");
    }

    #[test]
    fn forward_reference_to_an_unproduced_value_is_corrupt() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::Btm,
            seed: 24,
        })
        .unwrap();
        let mut bytes = artifact_to_bytes(&net.lower().unwrap());
        // The first op is the head FloatConv reading value 0 (tag byte,
        // then the src u32) right after name/scale/counts. Point it at a
        // value that does not exist yet.
        let name_len = 4 + "SRResNet".len();
        let src_offset = 12 + name_len + 4 + 4 + 4 + 1;
        bytes[src_offset..src_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(artifact_from_bytes(&bytes), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn implausible_scale_is_corrupt_not_a_deferred_abort() {
        // A scale that would pass decoding but force a ~scale²-sized
        // allocation at the first forward must be rejected at load.
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::Btm,
            seed: 27,
        })
        .unwrap();
        let bytes = artifact_to_bytes(&net.lower().unwrap());
        let scale_offset = 12 + 4 + "SRResNet".len();
        for bad in [0u32, u32::MAX] {
            let mut tampered = bytes.clone();
            tampered[scale_offset..scale_offset + 4].copy_from_slice(&bad.to_le_bytes());
            assert!(
                matches!(artifact_from_bytes(&tampered), Err(Error::Corrupt { .. })),
                "scale {bad}"
            );
        }
    }

    #[test]
    fn broadcast_tensor_shape_is_validated_at_decode() {
        // Tamper an E2FIF artifact's gamma into a rank-5 broadcast shape:
        // it must be Corrupt at load, not a huge broadcast at forward.
        let net = rdn(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::E2fif,
            seed: 29,
        })
        .unwrap();
        let good = net.lower().unwrap();
        let bytes = artifact_to_bytes(&good);
        let loaded = artifact_from_bytes(&bytes).unwrap();
        assert_eq!(loaded.num_ops(), good.num_ops(), "well-formed round trip stays intact");
        // Find the serialized [1, 8, 1, 1] gamma dims (u32 rank 4 then the
        // dims) and stretch the leading 1 into 64.
        let needle: Vec<u8> = [4u32, 1, 8, 1, 1].iter().flat_map(|v| v.to_le_bytes()).collect();
        let pos = bytes.windows(needle.len()).position(|w| w == needle).expect("gamma dims");
        let mut tampered = bytes;
        tampered[pos + 4..pos + 8].copy_from_slice(&64u32.to_le_bytes());
        assert!(matches!(artifact_from_bytes(&tampered), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn absurd_op_count_and_input_passthrough_output_are_corrupt() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 28,
        })
        .unwrap();
        let bytes = artifact_to_bytes(&net.lower().unwrap());
        let count_offset = 12 + 4 + "SRResNet".len() + 4;
        // An op count far beyond the file size must fail before sizing
        // any allocation.
        let mut huge = bytes.clone();
        huge[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(artifact_from_bytes(&huge), Err(Error::Corrupt { .. })));
        // An output id of 0 would serve the un-upscaled input.
        let mut passthrough = bytes;
        passthrough[count_offset + 4..count_offset + 8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(artifact_from_bytes(&passthrough), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn oversized_channel_attention_gate_is_corrupt_not_a_deferred_abort() {
        // A narrow value gated by a CA whose excite conv fans out to a
        // huge channel count would broadcast-expand at forward; the
        // width tracker must count the gate.
        use scales_core::FloatConv2d;
        use scales_tensor::ops::Conv2dSpec;
        let mut b = scales_models::DeployedNetworkBuilder::new("hostile", 2);
        let spec = Conv2dSpec { stride: 1, padding: 0 };
        let down = FloatConv2d::new(Tensor::ones(&[1, 3, 1, 1]), None, spec).unwrap();
        let up = FloatConv2d::new(Tensor::ones(&[1 << 20, 1, 1, 1]), None, spec).unwrap();
        let v = b.push(DeployedOp::ChannelAttention {
            ca: DeployedChannelAttention::new(down, up),
            src: b.input(),
        });
        let bytes = artifact_to_bytes(&b.finish(v));
        assert!(matches!(artifact_from_bytes(&bytes), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn chained_concats_are_corrupt_not_a_deferred_abort() {
        // Concat fan-out composes multiplicatively too: concat the input
        // 2048 times, then concat that 2048 times (~4M× duplication).
        let mut b = scales_models::DeployedNetworkBuilder::new("hostile", 2);
        let v1 = b.push(DeployedOp::Concat { srcs: vec![b.input(); 2048] });
        let v2 = b.push(DeployedOp::Concat { srcs: vec![v1; 2048] });
        let bytes = artifact_to_bytes(&b.finish(v2));
        assert!(matches!(artifact_from_bytes(&bytes), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn chained_upsample_ops_are_corrupt_not_a_deferred_abort() {
        // Per-op factors within bounds can still compose into an
        // astronomical first-forward allocation; the decoder must reject
        // the composition itself.
        let mut b = scales_models::DeployedNetworkBuilder::new("hostile", 2);
        let mut v = b.input();
        for _ in 0..4 {
            v = b.push(DeployedOp::PixelShuffle { factor: 4, src: v }); // 4⁴ = 256 > 64
        }
        let bytes = artifact_to_bytes(&b.finish(v));
        assert!(matches!(artifact_from_bytes(&bytes), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn truncated_artifact_is_typed() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 25,
        })
        .unwrap();
        let bytes = artifact_to_bytes(&net.lower().unwrap());
        for cut in [bytes.len() - 1, bytes.len() / 2, 20] {
            assert!(
                matches!(artifact_from_bytes(&bytes[..cut]), Err(Error::Truncated { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 26,
        })
        .unwrap();
        let checkpoint = crate::checkpoint_to_bytes(&net);
        assert!(matches!(
            artifact_from_bytes(&checkpoint),
            Err(Error::WrongKind { expected: ArtifactKind::Deployed, found: ArtifactKind::Checkpoint })
        ));
    }
}
