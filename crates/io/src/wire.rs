//! Little-endian wire primitives for the artifact format.
//!
//! Hand-rolled on purpose: the build environment is offline, so the
//! format depends on nothing beyond `std`. Every read is bounds-checked
//! and returns a typed [`Error`] — a malformed or truncated file can
//! never panic or hand back a partially-read value.

use crate::Error;
use scales_tensor::Tensor;

/// Append-only byte sink for the writer side.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` stored as `u32` (all extents in this format are small).
    ///
    /// # Panics
    ///
    /// Panics when the value exceeds `u32::MAX` — impossible for the op
    /// counts, channel counts and dims this format stores.
    pub fn put_len(&mut self, v: usize) {
        self.put_u32(u32::try_from(v).expect("format extent exceeds u32"));
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_len(vs.len());
        self.buf.reserve(vs.len() * 4);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_len(vs.len());
        self.buf.reserve(vs.len() * 8);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Shape (rank + dims) followed by the raw little-endian `f32` buffer.
    pub fn put_tensor(&mut self, t: &Tensor) {
        self.put_len(t.rank());
        for &d in t.shape() {
            self.put_len(d);
        }
        t.extend_le_bytes(&mut self.buf);
    }
}

/// Bounds-checked cursor for the reader side.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current cursor position (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn finish(&self) -> Result<(), Error> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::TrailingBytes { consumed: self.pos, len: self.buf.len() })
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let end = self.pos.checked_add(n).ok_or(Error::Truncated {
            offset: self.pos,
            needed: n,
            len: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(Error::Truncated { offset: self.pos, needed: n, len: self.buf.len() });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn take_u8(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    pub fn take_bool(&mut self) -> Result<bool, Error> {
        let offset = self.pos;
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::Corrupt { offset, what: format!("boolean byte {other}") }),
        }
    }

    pub fn take_u16(&mut self) -> Result<u16, Error> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn take_u32(&mut self) -> Result<u32, Error> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, Error> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn take_f32(&mut self) -> Result<f32, Error> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_len(&mut self) -> Result<usize, Error> {
        Ok(self.take_u32()? as usize)
    }

    pub fn take_str(&mut self) -> Result<String, Error> {
        let offset = self.pos;
        let n = self.take_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt { offset, what: "non-UTF-8 string".into() })
    }

    pub fn take_f32s(&mut self) -> Result<Vec<f32>, Error> {
        let n = self.take_len()?;
        let bytes = self.take(n.checked_mul(4).ok_or(Error::Corrupt {
            offset: self.pos,
            what: format!("f32 run of {n} elements overflows"),
        })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect())
    }

    pub fn take_u64s(&mut self) -> Result<Vec<u64>, Error> {
        let n = self.take_len()?;
        let bytes = self.take(n.checked_mul(8).ok_or(Error::Corrupt {
            offset: self.pos,
            what: format!("u64 run of {n} elements overflows"),
        })?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
            .collect())
    }

    pub fn take_tensor(&mut self) -> Result<Tensor, Error> {
        let offset = self.pos;
        let rank = self.take_len()?;
        if rank > 8 {
            return Err(Error::Corrupt { offset, what: format!("tensor rank {rank}") });
        }
        let mut shape = Vec::with_capacity(rank);
        let mut volume = 1usize;
        for _ in 0..rank {
            let d = self.take_len()?;
            volume = volume.checked_mul(d).ok_or(Error::Corrupt {
                offset,
                what: "tensor volume overflows".into(),
            })?;
            shape.push(d);
        }
        let bytes = self.take(volume.checked_mul(4).ok_or(Error::Corrupt {
            offset,
            what: "tensor byte length overflows".into(),
        })?)?;
        Tensor::from_le_bytes(bytes, &shape)
            .map_err(|_| Error::Corrupt { offset, what: "tensor payload length".into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(0xbeef);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_f32(-1.25);
        w.put_str("SRResNet");
        w.put_f32s(&[1.0, -0.0]);
        w.put_u64s(&[u64::MAX, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_u16().unwrap(), 0xbeef);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.take_f32().unwrap(), -1.25);
        assert_eq!(r.take_str().unwrap(), "SRResNet");
        assert_eq!(r.take_f32s().unwrap(), vec![1.0, -0.0]);
        assert_eq!(r.take_u64s().unwrap(), vec![u64::MAX, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn tensor_round_trip_preserves_bits() {
        let t = Tensor::from_vec(vec![0.1, -0.0, 3.5e-40], &[3, 1]).unwrap();
        let mut w = Writer::new();
        w.put_tensor(&t);
        let bytes = w.into_bytes();
        let back = Reader::new(&bytes).take_tensor().unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(matches!(r.take_u64(), Err(Error::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = [0u8; 3];
        let mut r = Reader::new(&bytes);
        let _ = r.take_u8().unwrap();
        assert!(matches!(r.finish(), Err(Error::TrailingBytes { consumed: 1, len: 3 })));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_corrupt() {
        let mut r = Reader::new(&[2u8]);
        assert!(matches!(r.take_bool(), Err(Error::Corrupt { .. })));
        let mut w = Writer::new();
        w.put_len(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(matches!(Reader::new(&bytes).take_str(), Err(Error::Corrupt { .. })));
    }
}
