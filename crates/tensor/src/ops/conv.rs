//! Convolution kernels: im2col-based 2-D convolution with the gradient
//! kernels needed by reverse-mode autodiff, plus 1-D convolution used by the
//! SCALES channel re-scaling module.

use crate::error::{Result, TensorError};
use crate::ops::matmul::gemm;
use crate::tensor::Tensor;

/// Static hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Spatial stride (same for both axes).
    pub stride: usize,
    /// Zero padding (same on all four sides).
    pub padding: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Self { stride: 1, padding: 0 }
    }
}

impl Conv2dSpec {
    /// Spec with stride 1 and "same" padding for an odd kernel size.
    #[must_use]
    pub fn same(kernel: usize) -> Self {
        Self { stride: 1, padding: kernel / 2 }
    }

    /// Output spatial extent for an input extent and kernel size.
    ///
    /// # Errors
    ///
    /// Returns an error when the kernel does not fit in the padded input or
    /// the stride is zero.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be positive".into()));
        }
        let padded = input + 2 * self.padding;
        if kernel == 0 || kernel > padded {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {kernel} does not fit padded extent {padded}"
            )));
        }
        Ok((padded - kernel) / self.stride + 1)
    }
}

/// Unfold one `[C, H, W]` image into an im2col matrix
/// `[C·kh·kw, oh·ow]`, zero-padding out-of-range taps.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col(
    img: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    col: &mut [f32],
) {
    debug_assert_eq!(col.len(), c * kh * kw * oh * ow);
    let pad = spec.padding as isize;
    let stride = spec.stride as isize;
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &img[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let dst = &mut col[row * oh * ow..(row + 1) * oh * ow];
                row += 1;
                for oy in 0..oh {
                    let iy = oy as isize * stride - pad + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        for v in &mut dst[oy * ow..(oy + 1) * ow] {
                            *v = 0.0;
                        }
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = ox as isize * stride - pad + kx as isize;
                        dst[oy * ow + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Fold an im2col matrix back into an image, accumulating overlapping taps.
/// This is the adjoint of [`im2col`] and implements the input-gradient pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn col2im(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    img: &mut [f32],
) {
    let pad = spec.padding as isize;
    let stride = spec.stride as isize;
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &mut img[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let src = &col[row * oh * ow..(row + 1) * oh * ow];
                row += 1;
                for oy in 0..oh {
                    let iy = oy as isize * stride - pad + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = ox as isize * stride - pad + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        plane[iy as usize * w + ix as usize] += src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// `(n, ic, h, w, oc, kh, oh, ow)` of a validated convolution.
type ConvDims = (usize, usize, usize, usize, usize, usize, usize, usize);

fn conv_dims(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<ConvDims> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "conv2d input" });
    }
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: weight.rank(), op: "conv2d weight" });
    }
    let (n, ic, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (oc, wic, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    if ic != wic {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: weight.shape().to_vec(),
            op: "conv2d channels",
        });
    }
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    Ok((n, ic, h, w, oc, kh, oh, ow))
}

/// 2-D convolution (cross-correlation, as in deep-learning frameworks):
/// `[N,IC,H,W] ⋆ [OC,IC,kh,kw] → [N,OC,OH,OW]`.
///
/// # Errors
///
/// Returns an error for wrong ranks, mismatched channel counts, or a kernel
/// that does not fit the padded input.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    let (n, ic, h, w, oc, kh, oh, ow) = conv_dims(input, weight, spec)?;
    let kw = weight.shape()[3];
    let krows = ic * kh * kw;
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    let (ind, wd) = (input.data(), weight.data());
    if n == 1 {
        // Single image: let the backend parallelise the GEMM itself over
        // output-channel rows.
        let mut col = vec![0.0f32; krows * oh * ow];
        im2col(ind, ic, h, w, kh, kw, spec, oh, ow, &mut col);
        gemm(wd, &col, out.data_mut(), oc, krows, oh * ow);
    } else {
        // Batch: one image per chunk row, each worker owning its own
        // im2col buffer and running the serial GEMM.
        let work = krows * oh * ow * (oc + 1);
        crate::backend::kernel().for_each_row_chunk(
            out.data_mut(),
            oc * oh * ow,
            work,
            &|first, chunk| {
                let mut col = vec![0.0f32; krows * oh * ow];
                for (j, o) in chunk.chunks_mut(oc * oh * ow).enumerate() {
                    let b = first + j;
                    im2col(&ind[b * ic * h * w..(b + 1) * ic * h * w], ic, h, w, kh, kw, spec, oh, ow, &mut col);
                    crate::backend::gemm_serial(wd, &col, o, oc, krows, oh * ow);
                }
            },
        );
    }
    Ok(out)
}

/// The zero-allocation core of [`conv2d`]: convolve a flat `[n, c, h, w]`
/// input into a caller-provided output buffer, staging the im2col matrix
/// in a reusable grow-only scratch buffer.
///
/// `out` must hold exactly `n · oc · oh · ow` elements and is fully
/// overwritten. Results are bit-identical to [`conv2d`] on every backend:
/// each image runs the same blocked GEMM with the same per-element
/// summation order (the batch is processed serially here; the backend
/// still splits each image's GEMM rows across threads).
///
/// # Errors
///
/// Returns an error for the same geometry violations as [`conv2d`], plus
/// mismatched `input`/`out` lengths.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    input: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    weight: &Tensor,
    spec: Conv2dSpec,
    col: &mut Vec<f32>,
    out: &mut [f32],
) -> Result<()> {
    if weight.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: weight.rank(), op: "conv2d weight" });
    }
    let (oc, wic, kh, kw) =
        (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
    if c != wic {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n, c, h, w],
            rhs: weight.shape().to_vec(),
            op: "conv2d channels",
        });
    }
    let oh = spec.out_extent(h, kh)?;
    let ow = spec.out_extent(w, kw)?;
    if input.len() != n * c * h * w {
        return Err(TensorError::LengthMismatch { expected: n * c * h * w, actual: input.len() });
    }
    if out.len() != n * oc * oh * ow {
        return Err(TensorError::LengthMismatch { expected: n * oc * oh * ow, actual: out.len() });
    }
    let krows = c * kh * kw;
    let colbuf = crate::workspace::sized(col, krows * oh * ow);
    out.fill(0.0);
    for b in 0..n {
        im2col(&input[b * c * h * w..(b + 1) * c * h * w], c, h, w, kh, kw, spec, oh, ow, colbuf);
        crate::backend::kernel().gemm(
            weight.data(),
            colbuf,
            &mut out[b * oc * oh * ow..(b + 1) * oc * oh * ow],
            oc,
            krows,
            oh * ow,
        );
    }
    Ok(())
}

/// Gradient of [`conv2d`] with respect to its input.
///
/// # Errors
///
/// Propagates shape errors from the forward spec.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_shape: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, ic, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
    let (oc, kh, kw) = (weight.shape()[0], weight.shape()[2], weight.shape()[3]);
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    let krows = ic * kh * kw;
    // w^T : [krows, oc]
    let wt = weight.reshape(&[oc, krows])?.transpose()?;
    let mut grad_in = Tensor::zeros(input_shape);
    let mut col = vec![0.0f32; krows * oh * ow];
    for b in 0..n {
        col.iter_mut().for_each(|v| *v = 0.0);
        gemm(
            wt.data(),
            &grad_out.data()[b * oc * oh * ow..(b + 1) * oc * oh * ow],
            &mut col,
            krows,
            oc,
            oh * ow,
        );
        col2im(
            &col,
            ic,
            h,
            w,
            kh,
            kw,
            spec,
            oh,
            ow,
            &mut grad_in.data_mut()[b * ic * h * w..(b + 1) * ic * h * w],
        );
    }
    Ok(grad_in)
}

/// Gradient of [`conv2d`] with respect to its weight.
///
/// # Errors
///
/// Propagates shape errors from the forward spec.
pub fn conv2d_backward_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_shape: &[usize],
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, ic, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let (oc, kh, kw) = (weight_shape[0], weight_shape[2], weight_shape[3]);
    let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
    let krows = ic * kh * kw;
    let mut grad_w = Tensor::zeros(weight_shape);
    let mut col = vec![0.0f32; krows * oh * ow];
    let mut col_t = vec![0.0f32; krows * oh * ow];
    for b in 0..n {
        im2col(&input.data()[b * ic * h * w..(b + 1) * ic * h * w], ic, h, w, kh, kw, spec, oh, ow, &mut col);
        // transpose col -> [oh*ow, krows]
        for r in 0..krows {
            for c in 0..oh * ow {
                col_t[c * krows + r] = col[r * oh * ow + c];
            }
        }
        gemm(
            &grad_out.data()[b * oc * oh * ow..(b + 1) * oc * oh * ow],
            &col_t,
            grad_w.data_mut(),
            oc,
            oh * ow,
            krows,
        );
    }
    Ok(grad_w)
}

/// 1-D convolution `[N,IC,L] ⋆ [OC,IC,k] → [N,OC,L']` with zero padding.
///
/// Used by the channel re-scaling module (`k = 5`, `padding = 2`, so the
/// channel axis length is preserved).
///
/// # Errors
///
/// Returns an error for wrong ranks or an unsatisfiable kernel size.
pub fn conv1d(input: &Tensor, weight: &Tensor, padding: usize) -> Result<Tensor> {
    if input.rank() != 3 || weight.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: if input.rank() != 3 { input.rank() } else { weight.rank() },
            op: "conv1d",
        });
    }
    let (n, ic, l) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oc, wic, k) = (weight.shape()[0], weight.shape()[1], weight.shape()[2]);
    if ic != wic {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape().to_vec(),
            rhs: weight.shape().to_vec(),
            op: "conv1d channels",
        });
    }
    let spec = Conv2dSpec { stride: 1, padding };
    let ol = spec.out_extent(l, k)?;
    let mut out = Tensor::zeros(&[n, oc, ol]);
    for b in 0..n {
        for o in 0..oc {
            for t in 0..ol {
                let mut acc = 0.0;
                for ci in 0..ic {
                    for ki in 0..k {
                        let pos = t as isize + ki as isize - padding as isize;
                        if pos < 0 || pos >= l as isize {
                            continue;
                        }
                        acc += input.data()[b * ic * l + ci * l + pos as usize]
                            * weight.data()[o * ic * k + ci * k + ki];
                    }
                }
                out.data_mut()[b * oc * ol + o * ol + t] = acc;
            }
        }
    }
    Ok(out)
}

/// Gradient of [`conv1d`] with respect to its input.
///
/// # Errors
///
/// Propagates shape errors.
pub fn conv1d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_shape: &[usize],
    padding: usize,
) -> Result<Tensor> {
    let (n, ic, l) = (input_shape[0], input_shape[1], input_shape[2]);
    let (oc, k) = (weight.shape()[0], weight.shape()[2]);
    let ol = grad_out.shape()[2];
    let mut grad_in = Tensor::zeros(input_shape);
    for b in 0..n {
        for o in 0..oc {
            for t in 0..ol {
                let g = grad_out.data()[b * oc * ol + o * ol + t];
                if g == 0.0 {
                    continue;
                }
                for ci in 0..ic {
                    for ki in 0..k {
                        let pos = t as isize + ki as isize - padding as isize;
                        if pos < 0 || pos >= l as isize {
                            continue;
                        }
                        grad_in.data_mut()[b * ic * l + ci * l + pos as usize] +=
                            g * weight.data()[o * ic * k + ci * k + ki];
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

/// Gradient of [`conv1d`] with respect to its weight.
///
/// # Errors
///
/// Propagates shape errors.
pub fn conv1d_backward_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_shape: &[usize],
    padding: usize,
) -> Result<Tensor> {
    let (n, ic, l) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let (oc, k) = (weight_shape[0], weight_shape[2]);
    let ol = grad_out.shape()[2];
    let mut grad_w = Tensor::zeros(weight_shape);
    for b in 0..n {
        for o in 0..oc {
            for t in 0..ol {
                let g = grad_out.data()[b * oc * ol + o * ol + t];
                if g == 0.0 {
                    continue;
                }
                for ci in 0..ic {
                    for ki in 0..k {
                        let pos = t as isize + ki as isize - padding as isize;
                        if pos < 0 || pos >= l as isize {
                            continue;
                        }
                        grad_w.data_mut()[o * ic * k + ci * k + ki] +=
                            g * input.data()[b * ic * l + ci * l + pos as usize];
                    }
                }
            }
        }
    }
    Ok(grad_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_conv2d(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Tensor {
        let (n, ic, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oc, _, kh, kw) = (weight.shape()[0], weight.shape()[1], weight.shape()[2], weight.shape()[3]);
        let oh = spec.out_extent(h, kh).unwrap();
        let ow = spec.out_extent(w, kw).unwrap();
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for b in 0..n {
            for o in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..ic {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[b, ci, iy as usize, ix as usize])
                                        * weight.at(&[o, ci, ky, kx]);
                                }
                            }
                        }
                        *out.at_mut(&[b, o, oy, ox]) = acc;
                    }
                }
            }
        }
        out
    }

    fn arange(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|i| (i as f32 * 0.17).sin()).collect(), shape).unwrap()
    }

    #[test]
    fn conv2d_matches_reference() {
        for &(stride, padding) in &[(1, 0), (1, 1), (2, 1)] {
            let spec = Conv2dSpec { stride, padding };
            let input = arange(&[2, 3, 6, 5]);
            let weight = arange(&[4, 3, 3, 3]);
            let fast = conv2d(&input, &weight, spec).unwrap();
            let slow = reference_conv2d(&input, &weight, spec);
            assert_eq!(fast.shape(), slow.shape());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn conv2d_into_is_bit_identical_to_conv2d_with_reused_scratch() {
        let mut col = Vec::new();
        for &(n, stride, padding) in &[(1usize, 1usize, 1usize), (3, 1, 1), (2, 2, 1), (2, 1, 0)] {
            let spec = Conv2dSpec { stride, padding };
            let input = arange(&[n, 3, 6, 5]);
            let weight = arange(&[4, 3, 3, 3]);
            let want = conv2d(&input, &weight, spec).unwrap();
            let mut out = vec![f32::NAN; want.len()]; // must be fully overwritten
            conv2d_into(input.data(), n, 3, 6, 5, &weight, spec, &mut col, &mut out).unwrap();
            for (a, b) in want.data().iter().zip(out.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} spec={spec:?}");
            }
        }
        // Geometry violations are typed errors, not panics.
        let weight = arange(&[4, 3, 3, 3]);
        let mut out = vec![0.0; 4 * 6 * 5];
        assert!(conv2d_into(&[0.0; 10], 1, 3, 6, 5, &weight, Conv2dSpec::same(3), &mut col, &mut out)
            .is_err());
        assert!(conv2d_into(
            arange(&[1, 2, 6, 5]).data(),
            1,
            2,
            6,
            5,
            &weight,
            Conv2dSpec::same(3),
            &mut col,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn conv2d_gradients_match_numeric() {
        let spec = Conv2dSpec::same(3);
        let input = arange(&[1, 2, 4, 4]);
        let weight = arange(&[2, 2, 3, 3]);
        let out = conv2d(&input, &weight, spec).unwrap();
        let grad_out = Tensor::ones(out.shape());
        let gi = conv2d_backward_input(&grad_out, &weight, input.shape(), spec).unwrap();
        let gw = conv2d_backward_weight(&grad_out, &input, weight.shape(), spec).unwrap();
        let eps = 1e-2;
        // Numeric check on a few coordinates.
        for &idx in &[0usize, 7, 15] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (conv2d(&ip, &weight, spec).unwrap().sum()
                - conv2d(&im, &weight, spec).unwrap().sum())
                / (2.0 * eps);
            assert!((gi.data()[idx] - num).abs() < 1e-2, "input grad {idx}: {} vs {num}", gi.data()[idx]);
        }
        for &idx in &[0usize, 9, 17] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let num = (conv2d(&input, &wp, spec).unwrap().sum()
                - conv2d(&input, &wm, spec).unwrap().sum())
                / (2.0 * eps);
            assert!((gw.data()[idx] - num).abs() < 1e-2, "weight grad {idx}: {} vs {num}", gw.data()[idx]);
        }
    }

    #[test]
    fn conv1d_preserves_length_with_same_padding() {
        let input = arange(&[2, 1, 8]);
        let weight = arange(&[1, 1, 5]);
        let out = conv1d(&input, &weight, 2).unwrap();
        assert_eq!(out.shape(), &[2, 1, 8]);
    }

    #[test]
    fn conv1d_gradients_match_numeric() {
        let input = arange(&[1, 1, 6]);
        let weight = arange(&[1, 1, 5]);
        let out = conv1d(&input, &weight, 2).unwrap();
        let grad_out = Tensor::ones(out.shape());
        let gi = conv1d_backward_input(&grad_out, &weight, input.shape(), 2).unwrap();
        let gw = conv1d_backward_weight(&grad_out, &input, weight.shape(), 2).unwrap();
        let eps = 1e-2;
        for idx in 0..input.len() {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (conv1d(&ip, &weight, 2).unwrap().sum() - conv1d(&im, &weight, 2).unwrap().sum()) / (2.0 * eps);
            assert!((gi.data()[idx] - num).abs() < 1e-2);
        }
        for idx in 0..weight.len() {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let num = (conv1d(&input, &wp, 2).unwrap().sum() - conv1d(&input, &wm, 2).unwrap().sum()) / (2.0 * eps);
            assert!((gw.data()[idx] - num).abs() < 1e-2);
        }
    }

    #[test]
    fn out_extent_validates() {
        let spec = Conv2dSpec { stride: 0, padding: 0 };
        assert!(spec.out_extent(4, 3).is_err());
        let spec = Conv2dSpec { stride: 1, padding: 0 };
        assert!(spec.out_extent(2, 5).is_err());
        assert_eq!(spec.out_extent(5, 3).unwrap(), 3);
    }
}
