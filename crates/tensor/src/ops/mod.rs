//! Tensor operation kernels.
//!
//! These are plain functions over [`Tensor`](crate::Tensor) values; the
//! autograd crate wraps them with gradient rules.

pub mod conv;
pub mod image;
pub mod matmul;

pub use conv::{
    conv1d, conv1d_backward_input, conv1d_backward_weight, conv2d, conv2d_backward_input,
    conv2d_backward_weight, conv2d_into, Conv2dSpec,
};
pub use image::{
    global_avg_pool, global_avg_pool_into, pixel_shuffle, pixel_unshuffle, window_merge,
    window_partition,
};
pub use matmul::{batched_matmul, gemm, matmul};

/// The logistic function `1 / (1 + e^{-x})`.
///
/// The single scalar sigmoid shared by every crate in the workspace (the
/// autograd activation, the deployment path's re-scaling branches and the
/// benches), so all paths agree bit-for-bit.
#[inline]
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}
