//! Tensor operation kernels.
//!
//! These are plain functions over [`Tensor`](crate::Tensor) values; the
//! autograd crate wraps them with gradient rules.

pub mod conv;
pub mod image;
pub mod matmul;

pub use conv::{
    conv1d, conv1d_backward_input, conv1d_backward_weight, conv2d, conv2d_backward_input,
    conv2d_backward_weight, Conv2dSpec,
};
pub use image::{global_avg_pool, pixel_shuffle, pixel_unshuffle, window_merge, window_partition};
pub use matmul::{batched_matmul, gemm, matmul};
