//! Image-layout operations: pixel shuffle (sub-pixel upsampling used by SR
//! tails), global average pooling, and windows partitioning for Swin-style
//! attention.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Sub-pixel rearrangement `[N, C·r², H, W] → [N, C, H·r, W·r]`
/// (PixelShuffle, Shi et al. 2016), the standard SR tail upsampler.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or a channel count that is not a
/// multiple of `r²`.
pub fn pixel_shuffle(input: &Tensor, r: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "pixel_shuffle" });
    }
    if r == 0 {
        return Err(TensorError::InvalidArgument("upscale factor must be positive".into()));
    }
    let (n, c_in, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    if c_in % (r * r) != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "channels {c_in} not divisible by r^2 = {}",
            r * r
        )));
    }
    let c = c_in / (r * r);
    let mut out = Tensor::zeros(&[n, c, h * r, w * r]);
    for b in 0..n {
        for co in 0..c {
            for ry in 0..r {
                for rx in 0..r {
                    let ci = co * r * r + ry * r + rx;
                    for y in 0..h {
                        for x in 0..w {
                            let v = input.at(&[b, ci, y, x]);
                            *out.at_mut(&[b, co, y * r + ry, x * r + rx]) = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Inverse of [`pixel_shuffle`]: `[N, C, H·r, W·r] → [N, C·r², H, W]`.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or spatial extents not divisible by
/// `r`.
pub fn pixel_unshuffle(input: &Tensor, r: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "pixel_unshuffle" });
    }
    if r == 0 {
        return Err(TensorError::InvalidArgument("downscale factor must be positive".into()));
    }
    let (n, c, hr, wr) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    if hr % r != 0 || wr % r != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "spatial extents {hr}x{wr} not divisible by {r}"
        )));
    }
    let (h, w) = (hr / r, wr / r);
    let mut out = Tensor::zeros(&[n, c * r * r, h, w]);
    for b in 0..n {
        for co in 0..c {
            for ry in 0..r {
                for rx in 0..r {
                    let ci = co * r * r + ry * r + rx;
                    for y in 0..h {
                        for x in 0..w {
                            let v = input.at(&[b, co, y * r + ry, x * r + rx]);
                            *out.at_mut(&[b, ci, y, x]) = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Global average pooling `[N, C, H, W] → [N, C, 1, 1]`.
///
/// # Errors
///
/// Returns an error for non-rank-4 input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "global_avg_pool" });
    }
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    let mut out = Tensor::zeros(&[n, c, 1, 1]);
    global_avg_pool_into(input.data(), n, c, h * w, out.data_mut());
    Ok(out)
}

/// The flat-slice core of [`global_avg_pool`]: per-channel means of a
/// `[n, c, hw]` volume into a caller-provided `n · c` buffer. One home
/// for the summation order, so the allocating op and the zero-allocation
/// deployment kernels that pool into scratch can never drift apart
/// bitwise.
///
/// # Panics
///
/// Panics (in debug builds via slice indexing) when the buffers are
/// shorter than the extents imply.
pub fn global_avg_pool_into(input: &[f32], n: usize, c: usize, hw: usize, out: &mut [f32]) {
    for b in 0..n {
        for ci in 0..c {
            let base = (b * c + ci) * hw;
            let s: f32 = input[base..base + hw].iter().sum();
            out[b * c + ci] = s / hw as f32;
        }
    }
}

/// Partition `[N, C, H, W]` into non-overlapping `ws×ws` windows, returning
/// a token tensor `[N·nw, ws·ws, C]` (Swin window attention layout).
///
/// # Errors
///
/// Returns an error when `H` or `W` is not divisible by `ws`.
pub fn window_partition(input: &Tensor, ws: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "window_partition" });
    }
    let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
    if ws == 0 || h % ws != 0 || w % ws != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "spatial extents {h}x{w} not divisible by window {ws}"
        )));
    }
    let (nh, nw) = (h / ws, w / ws);
    let mut out = Tensor::zeros(&[n * nh * nw, ws * ws, c]);
    for b in 0..n {
        for wy in 0..nh {
            for wx in 0..nw {
                let widx = (b * nh + wy) * nw + wx;
                for ty in 0..ws {
                    for tx in 0..ws {
                        let tok = ty * ws + tx;
                        for ci in 0..c {
                            let v = input.at(&[b, ci, wy * ws + ty, wx * ws + tx]);
                            *out.at_mut(&[widx, tok, ci]) = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Inverse of [`window_partition`]: tokens `[N·nw, ws·ws, C]` back to the
/// image `[N, C, H, W]`.
///
/// # Errors
///
/// Returns an error when the token tensor is inconsistent with the target
/// image geometry.
pub fn window_merge(tokens: &Tensor, n: usize, c: usize, h: usize, w: usize, ws: usize) -> Result<Tensor> {
    if tokens.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: tokens.rank(), op: "window_merge" });
    }
    if ws == 0 || !h.is_multiple_of(ws) || !w.is_multiple_of(ws) {
        return Err(TensorError::InvalidArgument(format!(
            "spatial extents {h}x{w} not divisible by window {ws}"
        )));
    }
    let (nh, nw) = (h / ws, w / ws);
    if tokens.shape() != [n * nh * nw, ws * ws, c] {
        return Err(TensorError::ShapeMismatch {
            lhs: tokens.shape().to_vec(),
            rhs: vec![n * nh * nw, ws * ws, c],
            op: "window_merge",
        });
    }
    let mut out = Tensor::zeros(&[n, c, h, w]);
    for b in 0..n {
        for wy in 0..nh {
            for wx in 0..nw {
                let widx = (b * nh + wy) * nw + wx;
                for ty in 0..ws {
                    for tx in 0..ws {
                        let tok = ty * ws + tx;
                        for ci in 0..c {
                            let v = tokens.at(&[widx, tok, ci]);
                            *out.at_mut(&[b, ci, wy * ws + ty, wx * ws + tx]) = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_shuffle_round_trip() {
        let t = Tensor::from_vec((0..32).map(|i| i as f32).collect(), &[1, 8, 2, 2]).unwrap();
        let up = pixel_shuffle(&t, 2).unwrap();
        assert_eq!(up.shape(), &[1, 2, 4, 4]);
        let back = pixel_unshuffle(&up, 2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn pixel_shuffle_layout() {
        // One output channel, r=2: channels [0..4) interleave into a 2x2 block.
        let t = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 4, 1, 1]).unwrap();
        let up = pixel_shuffle(&t, 2).unwrap();
        assert_eq!(up.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn pixel_shuffle_validates() {
        let t = Tensor::zeros(&[1, 3, 2, 2]);
        assert!(pixel_shuffle(&t, 2).is_err());
        let t = Tensor::zeros(&[1, 4, 3, 3]);
        assert!(pixel_unshuffle(&t, 2).is_err());
    }

    #[test]
    fn global_avg_pool_means() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]).unwrap();
        let p = global_avg_pool(&t).unwrap();
        assert_eq!(p.shape(), &[1, 2, 1, 1]);
        assert_eq!(p.data(), &[4.0, 2.0]);
    }

    #[test]
    fn window_partition_round_trip() {
        let t = Tensor::from_vec((0..64).map(|i| (i as f32).cos()).collect(), &[2, 2, 4, 4]).unwrap();
        let tokens = window_partition(&t, 2).unwrap();
        assert_eq!(tokens.shape(), &[8, 4, 2]);
        let back = window_merge(&tokens, 2, 2, 4, 4, 2).unwrap();
        assert_eq!(back, t);
    }
}
