//! Matrix multiplication kernels.
//!
//! `f32` GEMM dispatched through the active [`crate::backend`] kernel: a
//! register-blocked microkernel (4-row × 8-column accumulator tiles held
//! across the whole inner-product loop) that the scalar backend runs
//! single-threaded and the parallel backend splits into output-row blocks
//! across threads (bit-identical results — every element accumulates in
//! the same ascending-`p` order on every path). No SIMD intrinsics are
//! used; the compiler autovectorises the fixed-width tiles well for the
//! model sizes in this reproduction.

use crate::backend;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Raw GEMM: `c[m×n] += a[m×k] · b[k×n]` over flat slices, on the active
/// backend kernel.
///
/// # Panics
///
/// Panics (in debug builds) if the slices are shorter than the given
/// dimensions imply.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    backend::kernel().gemm(a, b, c, m, k, n);
}

/// Matrix product of two rank-2 tensors: `[m,k] × [k,n] → [m,n]`.
///
/// # Errors
///
/// Returns an error when either operand is not a matrix or the inner
/// dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
            op: "matmul",
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Batched matrix product: `[b,m,k] × [b,k,n] → [b,m,n]`.
///
/// # Errors
///
/// Returns an error for non-rank-3 operands or mismatched batch/inner
/// dimensions.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 3 || b.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: if a.rank() != 3 { a.rank() } else { b.rank() },
            op: "batched_matmul",
        });
    }
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    if ba != bb || k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "batched_matmul",
        });
    }
    let mut out = Tensor::zeros(&[ba, m, n]);
    let (ad, bd) = (a.data(), b.data());
    // One batch entry per chunk row: entries run concurrently on the
    // parallel backend, each with the serial inner GEMM.
    backend::kernel().for_each_row_chunk(out.data_mut(), m * n, m * k * n, &|first, chunk| {
        for (j, c) in chunk.chunks_mut(m * n).enumerate() {
            let i = first + j;
            backend::gemm_serial(
                &ad[i * m * k..(i + 1) * m * k],
                &bd[i * k * n..(i + 1) * k * n],
                c,
                m,
                k,
                n,
            );
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn scalar_and_parallel_kernels_agree_via_public_gemm() {
        use crate::backend::{Kernel as _, ParallelKernel, ScalarKernel};
        let (m, k, n) = (48, 33, 52);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.29).cos()).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        ScalarKernel.gemm(&a, &b, &mut c1, m, k, n);
        ParallelKernel.gemm(&a, &b, &mut c2, m, k, n);
        assert_eq!(c1, c2);
    }

    #[test]
    fn batched_matmul_matches_loop() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i % 5) as f32).collect(), &[2, 3, 2]).unwrap();
        let c = batched_matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        for bi in 0..2 {
            let am = a.slice_axis(0, bi, 1).unwrap().reshape(&[2, 3]).unwrap();
            let bm = b.slice_axis(0, bi, 1).unwrap().reshape(&[3, 2]).unwrap();
            let cm = matmul(&am, &bm).unwrap();
            let got = c.slice_axis(0, bi, 1).unwrap().reshape(&[2, 2]).unwrap();
            assert_eq!(cm, got);
        }
    }
}
