//! Matrix multiplication kernels.
//!
//! Plain `f32` GEMM in ikj loop order. No SIMD intrinsics are used; the
//! compiler autovectorises the inner loop well enough for the model sizes in
//! this reproduction.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Raw GEMM: `c[m×n] += a[m×k] · b[k×n]` over flat slices.
///
/// # Panics
///
/// Panics (in debug builds) if the slices are shorter than the given
/// dimensions imply.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += av * bv;
            }
        }
    }
}

/// Matrix product of two rank-2 tensors: `[m,k] × [k,n] → [m,n]`.
///
/// # Errors
///
/// Returns an error when either operand is not a matrix or the inner
/// dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: if a.rank() != 2 { a.rank() } else { b.rank() },
            op: "matmul",
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// Batched matrix product: `[b,m,k] × [b,k,n] → [b,m,n]`.
///
/// # Errors
///
/// Returns an error for non-rank-3 operands or mismatched batch/inner
/// dimensions.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 3 || b.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            actual: if a.rank() != 3 { a.rank() } else { b.rank() },
            op: "batched_matmul",
        });
    }
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    if ba != bb || k != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "batched_matmul",
        });
    }
    let mut out = Tensor::zeros(&[ba, m, n]);
    for i in 0..ba {
        gemm(
            &a.data()[i * m * k..(i + 1) * m * k],
            &b.data()[i * k * n..(i + 1) * k * n],
            &mut out.data_mut()[i * m * n..(i + 1) * m * n],
            m,
            k,
            n,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn batched_matmul_matches_loop() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..12).map(|i| (i % 5) as f32).collect(), &[2, 3, 2]).unwrap();
        let c = batched_matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        for bi in 0..2 {
            let am = a.slice_axis(0, bi, 1).unwrap().reshape(&[2, 3]).unwrap();
            let bm = b.slice_axis(0, bi, 1).unwrap().reshape(&[3, 2]).unwrap();
            let cm = matmul(&am, &bm).unwrap();
            let got = c.slice_axis(0, bi, 1).unwrap().reshape(&[2, 2]).unwrap();
            assert_eq!(cm, got);
        }
    }
}
