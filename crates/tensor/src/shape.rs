//! Shape arithmetic: volumes, strides and NumPy-style broadcasting.

use crate::error::{Result, TensorError};

/// Number of elements a shape describes (product of extents).
///
/// The empty shape `[]` describes a scalar and has volume 1.
#[must_use]
pub fn volume(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous tensor of the given shape.
#[must_use]
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![0; shape.len()];
    let mut acc = 1;
    for (s, &dim) in out.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    out
}

/// Compute the broadcast result shape of two shapes, following NumPy rules:
/// align trailing axes; each pair must be equal or one of them 1.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes are incompatible.
pub fn broadcast_shape(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let l = lhs.len().checked_sub(1 + i).map_or(1, |j| lhs[j]);
        let r = rhs.len().checked_sub(1 + i).map_or(1, |j| rhs[j]);
        out[rank - 1 - i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
                op: "broadcast",
            });
        };
    }
    Ok(out)
}

/// Map a flat index in the broadcast output back to a flat index in an
/// operand of shape `src` (aligned to the trailing axes of `out_shape`).
#[must_use]
pub fn broadcast_src_index(out_index: usize, out_shape: &[usize], src: &[usize]) -> usize {
    let mut rem = out_index;
    let mut src_idx = 0;
    let src_strides = strides(src);
    let offset = out_shape.len() - src.len();
    for (axis, &dim) in out_shape.iter().enumerate() {
        let trailing: usize = out_shape[axis + 1..].iter().product();
        let coord = rem / trailing;
        rem %= trailing;
        if axis >= offset {
            let s_axis = axis - offset;
            let s_coord = if src[s_axis] == 1 { 0 } else { coord };
            src_idx += s_coord * src_strides[s_axis];
        }
        let _ = dim;
    }
    src_idx
}

/// Validate that `axis < rank`, returning it unchanged.
///
/// # Errors
///
/// Returns [`TensorError::AxisOutOfRange`] when the axis is too large.
pub fn check_axis(axis: usize, rank: usize) -> Result<usize> {
    if axis < rank {
        Ok(axis)
    } else {
        Err(TensorError::AxisOutOfRange { axis, rank })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(volume(&[]), 1);
        assert_eq!(volume(&[2, 3, 4]), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_with_ones() {
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]).unwrap(), vec![2, 3, 4]);
        assert_eq!(broadcast_shape(&[1], &[7, 5]).unwrap(), vec![7, 5]);
    }

    #[test]
    fn broadcast_rejects_incompatible() {
        assert!(broadcast_shape(&[2, 3], &[4, 3]).is_err());
    }

    #[test]
    fn broadcast_src_index_maps_ones() {
        // out shape [2,3], src [1,3]: row collapses.
        assert_eq!(broadcast_src_index(4, &[2, 3], &[1, 3]), 1);
        // src [2,1]: column collapses.
        assert_eq!(broadcast_src_index(4, &[2, 3], &[2, 1]), 1);
        // scalar src.
        assert_eq!(broadcast_src_index(5, &[2, 3], &[]), 0);
    }

    #[test]
    fn check_axis_bounds() {
        assert!(check_axis(1, 2).is_ok());
        assert!(check_axis(2, 2).is_err());
    }
}
