//! # scales-tensor
//!
//! Dense `f32` tensor math underpinning the Rust reproduction of
//! *SCALES: Boost Binary Neural Network for Image Super-Resolution with
//! Efficient Scalings* (DATE 2025).
//!
//! The crate provides exactly what the reproduction's training and inference
//! stack needs and nothing more: a contiguous row-major [`Tensor`],
//! NumPy-style broadcasting, matrix multiplication, im2col 2-D/1-D
//! convolution with analytic gradient kernels, pixel (un)shuffle, window
//! partitioning for Swin-style attention, and global average pooling.
//!
//! Hot loops dispatch through the [`backend`] kernel layer: a scalar
//! reference kernel, a row-blocked multi-threaded kernel, and a
//! runtime-detected SIMD kernel ([`simd`]: AVX2 float GEMM + hardware
//! popcount, falling back to scalar on older CPUs) — all with identical
//! numerics — selected by the `parallel` feature, the `SCALES_BACKEND`
//! environment variable, or [`backend::set_backend`] at runtime.
//!
//! ```
//! use scales_tensor::{ops, Tensor};
//!
//! # fn main() -> Result<(), scales_tensor::TensorError> {
//! let img = Tensor::ones(&[1, 3, 8, 8]);
//! let w = Tensor::full(&[4, 3, 3, 3], 0.1);
//! let y = ops::conv2d(&img, &w, ops::Conv2dSpec::same(3))?;
//! assert_eq!(y.shape(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod error;
pub mod ops;
pub mod shape;
pub mod simd;
mod tensor;
pub mod workspace;

pub use backend::{Backend, Kernel};
pub use simd::SimdLevel;
pub use error::{Result, TensorError};
pub use tensor::Tensor;
