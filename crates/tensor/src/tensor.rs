//! The dense, contiguous, row-major `f32` tensor at the heart of the
//! reproduction.

use crate::error::{Result, TensorError};
use crate::shape::{broadcast_shape, broadcast_src_index, check_axis, strides, volume};

/// A dense `f32` tensor stored contiguously in row-major order.
///
/// This is the single storage type used throughout the SCALES reproduction:
/// images are `[C, H, W]`, batches are `[N, C, H, W]`, token tensors are
/// `[B, L, C]`. All views are materialised (permute and slice copy), which
/// keeps the implementation simple and the autograd tape deterministic.
///
/// ```
/// use scales_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// # Ok::<(), scales_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Create a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the shape's volume.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected = volume(shape);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(Self { data, shape: shape.to_vec() })
    }

    /// A tensor filled with zeros.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Self { data: vec![0.0; volume(shape)], shape: shape.to_vec() }
    }

    /// A tensor filled with ones.
    #[must_use]
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { data: vec![value; volume(shape)], shape: shape.to_vec() }
    }

    /// A rank-0 tensor holding a single value.
    #[must_use]
    pub fn scalar(value: f32) -> Self {
        Self { data: vec![value], shape: vec![] }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank (number of axes).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (some extent is zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat storage.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its flat storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Append the flat storage to `out` as little-endian `f32` bytes —
    /// the raw-buffer view used by the `scales-io` artifact format.
    /// Bit-exact: every value round-trips through
    /// [`Tensor::from_le_bytes`] with identical `f32::to_bits`.
    pub fn extend_le_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Rebuild a tensor from little-endian `f32` bytes and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the byte count is not
    /// `4 × volume(shape)`, and [`TensorError::InvalidArgument`] when that
    /// product overflows (the shape may come from untrusted bytes).
    pub fn from_le_bytes(bytes: &[u8], shape: &[usize]) -> Result<Self> {
        let expected = shape
            .iter()
            .try_fold(4usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| TensorError::InvalidArgument("tensor byte volume overflows".into()))?;
        if bytes.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: bytes.len() });
        }
        let data = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        Ok(Self { data, shape: shape.to_vec() })
    }

    /// Element at the given multi-index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of range.
    #[must_use]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Mutable element access at the given multi-index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of range.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let i = self.flat_index(index);
        &mut self.data[i]
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let st = strides(&self.shape);
        index
            .iter()
            .zip(st.iter().zip(self.shape.iter()))
            .map(|(&i, (&s, &d))| {
                assert!(i < d, "index {i} out of range for extent {d}");
                i * s
            })
            .sum()
    }

    /// Reinterpret the storage under a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected = volume(shape);
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { expected, actual: self.data.len() });
        }
        Ok(Self { data: self.data.clone(), shape: shape.to_vec() })
    }

    /// Apply `f` to every element, producing a new tensor of the same shape.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Apply `f` in place to every element.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine with another tensor elementwise under NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes do not
    /// broadcast together.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        let out_shape = broadcast_shape(&self.shape, &other.shape)?;
        let n = volume(&out_shape);
        let mut data = Vec::with_capacity(n);
        if self.shape == other.shape {
            // Fast path: identical shapes need no index mapping.
            data.extend(self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)));
        } else {
            for i in 0..n {
                let a = self.data[broadcast_src_index(i, &out_shape, &self.shape)];
                let b = other.data[broadcast_src_index(i, &out_shape, &other.shape)];
                data.push(f(a, b));
            }
        }
        Ok(Self { data, shape: out_shape })
    }

    /// Reduce a broadcast gradient back to this tensor's shape by summing
    /// over the broadcast axes. This is the adjoint of broadcasting and is
    /// used by the autograd layer.
    ///
    /// # Errors
    ///
    /// Returns an error when `grad`'s shape is not a broadcast extension of
    /// `target_shape`.
    pub fn reduce_to_shape(grad: &Tensor, target_shape: &[usize]) -> Result<Tensor> {
        if grad.shape() == target_shape {
            return Ok(grad.clone());
        }
        // Validate compatibility.
        let b = broadcast_shape(target_shape, grad.shape())?;
        if b != grad.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: target_shape.to_vec(),
                rhs: grad.shape.clone(),
                op: "reduce_to_shape",
            });
        }
        let mut out = Tensor::zeros(target_shape);
        for i in 0..grad.len() {
            let j = broadcast_src_index(i, &grad.shape, target_shape);
            out.data[j] += grad.data[i];
        }
        Ok(out)
    }

    /// Sum of all elements (routed through the active backend kernel's
    /// reduction, which chunks large tensors across threads).
    #[must_use]
    pub fn sum(&self) -> f32 {
        crate::backend::kernel().sum(&self.data)
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Population variance of all elements (0 for an empty tensor).
    #[must_use]
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.data.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / self.data.len() as f32
    }

    /// Largest element (negative infinity for an empty tensor).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (positive infinity for an empty tensor).
    #[must_use]
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum over one axis, optionally keeping it as an extent-1 axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for a bad axis.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Result<Tensor> {
        check_axis(axis, self.rank())?;
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let mut out = Tensor::zeros(&out_shape);
        let st = strides(&self.shape);
        let out_st = strides(&out_shape);
        for i in 0..self.len() {
            let mut rem = i;
            let mut oi = 0;
            for (a, (&s, &os)) in st.iter().zip(out_st.iter()).enumerate() {
                let coord = rem / s;
                rem %= s;
                let c = if a == axis { 0 } else { coord };
                oi += c * os;
            }
            out.data[oi] += self.data[i];
        }
        if keepdim {
            Ok(out)
        } else {
            let mut squeezed = self.shape.clone();
            squeezed.remove(axis);
            out.reshape(&squeezed)
        }
    }

    /// Mean over one axis, optionally keeping it as an extent-1 axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] for a bad axis.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Result<Tensor> {
        let n = *self.shape.get(axis).ok_or(TensorError::AxisOutOfRange {
            axis,
            rank: self.rank(),
        })? as f32;
        let mut s = self.sum_axis(axis, keepdim)?;
        s.map_inplace(|x| x / n);
        Ok(s)
    }

    /// Permute axes (general transpose). The data is materialised.
    ///
    /// # Errors
    ///
    /// Returns an error when `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                expected: self.rank(),
                actual: perm.len(),
                op: "permute",
            });
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            check_axis(p, self.rank())?;
            if seen[p] {
                return Err(TensorError::InvalidArgument(format!(
                    "permutation repeats axis {p}"
                )));
            }
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_st = strides(&self.shape);
        let out_st = strides(&out_shape);
        let mut out = Tensor::zeros(&out_shape);
        for i in 0..self.len() {
            // Decompose output flat index into output coords, map to input.
            let mut rem = i;
            let mut src = 0;
            for (a, &os) in out_st.iter().enumerate() {
                let coord = rem / os;
                rem %= os;
                src += coord * in_st[perm[a]];
            }
            out.data[i] = self.data[src];
        }
        Ok(out)
    }

    /// Matrix transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank(), op: "transpose" });
        }
        self.permute(&[1, 0])
    }

    /// Extract a contiguous slab `start..start+len` along `axis`.
    ///
    /// # Errors
    ///
    /// Returns an error for a bad axis or an out-of-range window.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Result<Tensor> {
        check_axis(axis, self.rank())?;
        if start + len > self.shape[axis] {
            return Err(TensorError::InvalidArgument(format!(
                "slice {start}..{} exceeds extent {}",
                start + len,
                self.shape[axis]
            )));
        }
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = len;
        let mut data = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = o * self.shape[axis] * inner + start * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Concatenate tensors along `axis`. All other extents must match.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty input list, a bad axis, or mismatched
    /// extents.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
        let first = parts.first().ok_or_else(|| {
            TensorError::InvalidArgument("concat of zero tensors".to_string())
        })?;
        check_axis(axis, first.rank())?;
        let mut axis_total = 0;
        for p in parts {
            if p.rank() != first.rank() {
                return Err(TensorError::RankMismatch {
                    expected: first.rank(),
                    actual: p.rank(),
                    op: "concat",
                });
            }
            for (a, (&d1, &d2)) in first.shape.iter().zip(p.shape.iter()).enumerate() {
                if a != axis && d1 != d2 {
                    return Err(TensorError::ShapeMismatch {
                        lhs: first.shape.clone(),
                        rhs: p.shape.clone(),
                        op: "concat",
                    });
                }
            }
            axis_total += p.shape[axis];
        }
        let mut out_shape = first.shape.clone();
        out_shape[axis] = axis_total;
        let outer: usize = first.shape[..axis].iter().product();
        let inner: usize = first.shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(volume(&out_shape));
        for o in 0..outer {
            for p in parts {
                let ext = p.shape[axis];
                let base = o * ext * inner;
                data.extend_from_slice(&p.data[base..base + ext * inner]);
            }
        }
        Tensor::from_vec(data, &out_shape)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_round_trip() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[0, 1, 2]), 6.0);
    }

    #[test]
    fn zip_map_broadcasts() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2, 1]).unwrap();
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.data(), &[11.0, 12.0, 23.0, 24.0]);
    }

    #[test]
    fn reduce_to_shape_is_broadcast_adjoint() {
        let g = Tensor::ones(&[2, 3]);
        let r = Tensor::reduce_to_shape(&g, &[2, 1]).unwrap();
        assert_eq!(r.data(), &[3.0, 3.0]);
        let r2 = Tensor::reduce_to_shape(&g, &[3]).unwrap();
        assert_eq!(r2.data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn sum_axis_keepdim() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let s = t.sum_axis(1, true).unwrap();
        assert_eq!(s.shape(), &[2, 1]);
        assert_eq!(s.data(), &[6.0, 15.0]);
        let s0 = t.sum_axis(0, false).unwrap();
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn permute_transposes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let p = t.permute(&[1, 0]).unwrap();
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn permute_rejects_bad_perm() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.permute(&[0, 0]).is_err());
        assert!(t.permute(&[0]).is_err());
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap();
        let a = t.slice_axis(1, 0, 2).unwrap();
        let b = t.slice_axis(1, 2, 2).unwrap();
        let back = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(back, t);
        let r0 = t.slice_axis(0, 1, 1).unwrap();
        assert_eq!(r0.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn statistics() {
        let t = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.variance(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), 1.0);
    }

    #[test]
    fn le_bytes_round_trip_is_bit_exact() {
        // Include values whose bit patterns are easy to corrupt: -0.0,
        // subnormals, and a NaN payload.
        let t = Tensor::from_vec(
            vec![1.5, -0.0, f32::MIN_POSITIVE / 2.0, f32::from_bits(0x7fc0_1234), -3.25e7, 0.1],
            &[2, 3],
        )
        .unwrap();
        let mut bytes = Vec::new();
        t.extend_le_bytes(&mut bytes);
        assert_eq!(bytes.len(), 24);
        let back = Tensor::from_le_bytes(&bytes, &[2, 3]).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn le_bytes_rejects_wrong_length_and_overflowing_shapes() {
        assert!(Tensor::from_le_bytes(&[0u8; 7], &[2]).is_err());
        assert!(Tensor::from_le_bytes(&[0u8; 8], &[3]).is_err());
        // A shape whose byte volume wraps usize must be a typed error,
        // not a wrapped-to-zero length check that "passes".
        assert!(Tensor::from_le_bytes(&[], &[1usize << 62, 2]).is_err());
    }
}
