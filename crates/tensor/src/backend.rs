//! Kernel-dispatch backend: every hot loop in the workspace (GEMM, im2col
//! convolution batches, large elementwise reductions, and the packed
//! XNOR-popcount channel loops in `scales-binary`) routes through the
//! [`Kernel`] selected here.
//!
//! Three kernels ship:
//!
//! * [`ScalarKernel`] — the single-threaded reference; byte-for-byte the
//!   seed semantics.
//! * [`ParallelKernel`] — splits row-blocks across `std::thread::scope`
//!   workers. Each worker runs the *same* inner loop over a disjoint slice
//!   of the output, so results are bit-identical to the scalar kernel
//!   regardless of thread count.
//! * [`SimdKernel`] — dispatches to hand-written x86-64 vector kernels
//!   (AVX2 float GEMM, hardware-popcount binary GEMM) when the CPU
//!   supports them (`is_x86_feature_detected!`, see [`crate::simd`]),
//!   falling back to the scalar loops on non-x86-64 targets or older
//!   CPUs. Results are bit-identical to the scalar kernel by construction
//!   (fixed per-lane summation order; see the [`crate::simd`] docs).
//!
//! Selection is layered, most specific first:
//!
//! 1. thread-scoped handle — [`with_thread_backend`] runs a closure with a
//!    backend passed by value, visible only on the calling thread. This is
//!    how `scales-serve` engines carry their own backend without touching
//!    process state: two engines on different threads can run different
//!    kernels concurrently.
//! 2. runtime — [`set_backend`] overrides the process-wide selection
//!    (tests and benches use this to compare kernels in one process);
//! 3. process environment — `SCALES_BACKEND=scalar|parallel|simd`
//!    (case-insensitive) overrides the compiled default at first use. An
//!    unrecognized value is a hard error (panic at first dispatch), never a
//!    silent fallback;
//! 4. compile-time default — `Backend::Scalar`, or `Backend::Parallel` when
//!    the crate's `parallel` feature is enabled.
//!
//! ```
//! use scales_tensor::backend::{self, Backend};
//!
//! let prev = backend::active();
//! backend::set_backend(Backend::Parallel);
//! assert_eq!(backend::active(), Backend::Parallel);
//! // A thread-scoped handle beats the process-wide selection…
//! backend::with_thread_backend(Backend::Scalar, || {
//!     assert_eq!(backend::active(), Backend::Scalar);
//! });
//! // …and is gone once the scope ends.
//! assert_eq!(backend::active(), Backend::Parallel);
//! backend::set_backend(prev);
//! ```

use crate::simd::SimdLevel;
use crate::TensorError;
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation executes the routed hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single-threaded reference loops.
    Scalar,
    /// Row-blocked loops dispatched over `std::thread::scope` workers.
    Parallel,
    /// Runtime-detected x86-64 vector kernels (AVX2 float GEMM,
    /// hardware-popcount binary GEMM), falling back to the scalar loops
    /// on hardware without them. Always valid to select; see
    /// [`Backend::detected`] for what the CPU actually offers.
    Simd,
}

impl Backend {
    /// The kernel implementing this backend.
    #[must_use]
    pub fn kernel(self) -> &'static dyn Kernel {
        match self {
            Backend::Scalar => &ScalarKernel,
            Backend::Parallel => &ParallelKernel,
            Backend::Simd => &SimdKernel,
        }
    }

    /// Stable display name (`"scalar"` / `"parallel"` / `"simd"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Parallel => "parallel",
            Backend::Simd => "simd",
        }
    }

    /// The CPU feature level found at runtime — what [`Backend::Simd`]
    /// will actually dispatch on this machine. Probed once per process
    /// via `is_x86_feature_detected!` ([`crate::simd::detected`]).
    #[must_use]
    pub fn detected() -> SimdLevel {
        crate::simd::detected()
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = TensorError;

    /// Parse a backend name, case-insensitively (`"scalar"`, `"Parallel"`,
    /// `"SIMD"`, …).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] naming the valid values for
    /// anything else — unrecognized backends are an error, never a silent
    /// scalar fallback.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("scalar") {
            Ok(Backend::Scalar)
        } else if s.eq_ignore_ascii_case("parallel") {
            Ok(Backend::Parallel)
        } else if s.eq_ignore_ascii_case("simd") {
            Ok(Backend::Simd)
        } else {
            Err(TensorError::InvalidArgument(format!(
                "unrecognized backend {s:?}: expected \"scalar\", \"parallel\" or \"simd\""
            )))
        }
    }
}

const BACKEND_UNSET: u8 = 0;
const BACKEND_SCALAR: u8 = 1;
const BACKEND_PARALLEL: u8 = 2;
const BACKEND_SIMD: u8 = 3;

static ACTIVE: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

fn compiled_default() -> Backend {
    if cfg!(feature = "parallel") {
        Backend::Parallel
    } else {
        Backend::Scalar
    }
}

/// The cargo feature set this kernel layer was compiled with, as a
/// stable label value (`"default"` or `"parallel"`). Feature flags only
/// exist at this crate's compile time, so the serving stack's
/// `scales_build_info` metric reads them here instead of re-testing
/// `cfg!` in a crate where the feature is never enabled.
#[must_use]
pub fn compiled_features() -> &'static str {
    if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "default"
    }
}

fn initial_backend() -> Backend {
    match std::env::var("SCALES_BACKEND") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("invalid SCALES_BACKEND environment variable: {e}")),
        Err(_) => compiled_default(),
    }
}

thread_local! {
    /// Thread-scoped backend handle installed by [`with_thread_backend`].
    static THREAD_BACKEND: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// Run `f` with `backend` active on **this thread only**, restoring the
/// previous thread-scoped handle afterwards (including on panic).
///
/// Unlike [`set_backend`] this mutates no process state: the handle is
/// passed by value and consulted before the global selection, so callers
/// (notably `scales-serve` engines) can each carry their own backend while
/// other threads keep theirs.
pub fn with_thread_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BACKEND.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_BACKEND.with(|c| c.replace(Some(backend))));
    f()
}

/// The currently active backend.
#[must_use]
pub fn active() -> Backend {
    if let Some(b) = THREAD_BACKEND.with(Cell::get) {
        return b;
    }
    match ACTIVE.load(Ordering::Relaxed) {
        BACKEND_SCALAR => Backend::Scalar,
        BACKEND_PARALLEL => Backend::Parallel,
        BACKEND_SIMD => Backend::Simd,
        _ => {
            let b = initial_backend();
            set_backend(b);
            b
        }
    }
}

/// Override the active backend for the whole process.
///
/// **This does not affect running engines or runtimes.** A
/// `scales_serve::Engine` captures its backend **by value** at build time
/// and installs it thread-scoped ([`with_thread_backend`]) around every
/// forward — the thread-scoped handle is consulted *before* this global —
/// so a `scales-runtime` worker pool keeps serving on the backend its
/// engine was built with no matter what is set here. `set_backend` only
/// changes (a) code that dispatches outside any engine/thread scope and
/// (b) the default captured by engines built *afterwards* without an
/// explicit `EngineBuilder::backend` choice.
pub fn set_backend(backend: Backend) {
    let v = match backend {
        Backend::Scalar => BACKEND_SCALAR,
        Backend::Parallel => BACKEND_PARALLEL,
        Backend::Simd => BACKEND_SIMD,
    };
    ACTIVE.store(v, Ordering::Relaxed);
}

/// The kernel of the active backend.
#[must_use]
pub fn kernel() -> &'static dyn Kernel {
    active().kernel()
}

/// Run `f` with the given backend active, restoring the previous
/// selection afterwards (including on panic). Test/bench helper.
///
/// Implemented as a thread-scoped handle (see [`with_thread_backend`]),
/// so it composes with nested scopes — the innermost always wins — and
/// never mutates the process-global selection other threads see.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    with_thread_backend(backend, f)
}

/// Work below this many f32 ops stays single-threaded even on the parallel
/// kernel — thread-scope setup would dominate.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 15;

/// A compute kernel the tensor, convolution and binary hot loops dispatch
/// to. Implementations must produce identical numerical results; they may
/// only differ in scheduling.
pub trait Kernel: Send + Sync {
    /// Kernel display name.
    fn name(&self) -> &'static str;

    /// The CPU feature level this kernel dispatches SIMD work at.
    /// [`SimdLevel::None`] for kernels that never vectorize (scalar,
    /// parallel); the detected level for [`SimdKernel`]. Downstream
    /// integer hot loops (the binary XNOR-popcount GEMM in
    /// `scales-binary`) consult this to pick their own scalar or
    /// hardware-popcount inner loops, keeping the whole selection behind
    /// the one backend dispatch.
    fn simd_level(&self) -> SimdLevel {
        SimdLevel::None
    }

    /// Raw GEMM `c[m×n] += a[m×k] · b[k×n]` over flat row-major slices.
    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// Split `data` into consecutive row-chunks (`row_len` elements per
    /// row) and invoke `f(first_row, chunk)` for each; chunks are disjoint,
    /// so the parallel kernel may run them concurrently. `work_per_row` is
    /// a rough op count used to decide whether threading pays off.
    /// `data.len()` must be a multiple of `row_len`.
    fn for_each_row_chunk(
        &self,
        data: &mut [f32],
        row_len: usize,
        work_per_row: usize,
        f: &(dyn Fn(usize, &mut [f32]) + Sync),
    );

    /// Sum of a flat slice (the elementwise-reduction entry point).
    ///
    /// Both kernels reduce fixed-size blocks in index order (see
    /// [`SUM_BLOCK`]), so the result is identical across backends and core
    /// counts.
    fn sum(&self, data: &[f32]) -> f32 {
        sum_block_serial(data)
    }
}

/// Block size of the deterministic blocked sum: partial sums are taken per
/// `SUM_BLOCK` elements and reduced in block order, so scalar and parallel
/// kernels agree bit-for-bit regardless of thread count. Slices at most
/// one block long reduce to a plain sequential sum.
pub const SUM_BLOCK: usize = 4096;

fn sum_block_serial(data: &[f32]) -> f32 {
    if data.len() <= SUM_BLOCK {
        return data.iter().sum();
    }
    data.chunks(SUM_BLOCK).map(|c| c.iter().sum::<f32>()).sum()
}

/// Serial GEMM building block for callers already inside a parallel
/// region (nesting thread scopes would oversubscribe the machine).
pub fn gemm_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    gemm_rows(a, b, c, 0, m, k, n);
}

/// Reference single-threaded kernel (exact seed semantics).
pub struct ScalarKernel;

/// Column width of the register tile the blocked GEMM accumulates in.
pub(crate) const GEMM_NR: usize = 8;

/// Row height of the register tile (rows of `a` sharing each loaded `b`
/// tile).
pub(crate) const GEMM_MR: usize = 4;

/// Shared inner GEMM row block, register-blocked: output rows are
/// processed in [`GEMM_MR`]-row groups whose [`GEMM_NR`]-wide column tiles
/// live in registers across the whole `k` loop, so each loaded `b` tile is
/// reused [`GEMM_MR`] times instead of once.
///
/// Every output element accumulates its products in ascending-`p` order in
/// every path (row quad, single-row remainder, column tail), which is the
/// same per-element summation order as the plain ikj reference loop —
/// results are bit-identical across kernels, row splits, and tile
/// boundaries.
fn gemm_rows(a: &[f32], b: &[f32], c: &mut [f32], first_row: usize, rows: usize, k: usize, n: usize) {
    let mut r = 0;
    while r + GEMM_MR <= rows {
        let base = (first_row + r) * k;
        let block = &mut c[r * n..(r + GEMM_MR) * n];
        let (c0, block) = block.split_at_mut(n);
        let (c1, block) = block.split_at_mut(n);
        let (c2, c3) = block.split_at_mut(n);
        gemm_row_quad(
            [
                &a[base..base + k],
                &a[base + k..base + 2 * k],
                &a[base + 2 * k..base + 3 * k],
                &a[base + 3 * k..base + 4 * k],
            ],
            b,
            [c0, c1, c2, c3],
            k,
            n,
        );
        r += GEMM_MR;
    }
    while r < rows {
        let base = (first_row + r) * k;
        gemm_row_single(&a[base..base + k], b, &mut c[r * n..(r + 1) * n], k, n);
        r += 1;
    }
}

/// Four output rows at once: the `GEMM_NR`-wide accumulator tiles of all
/// four rows stay in registers over the full `k` loop.
fn gemm_row_quad(a: [&[f32]; 4], b: &[f32], c: [&mut [f32]; 4], k: usize, n: usize) {
    let [a0, a1, a2, a3] = a;
    let [c0, c1, c2, c3] = c;
    let tiles = n - n % GEMM_NR;
    let mut j = 0;
    while j < tiles {
        let mut t0: [f32; GEMM_NR] = c0[j..j + GEMM_NR].try_into().expect("tile");
        let mut t1: [f32; GEMM_NR] = c1[j..j + GEMM_NR].try_into().expect("tile");
        let mut t2: [f32; GEMM_NR] = c2[j..j + GEMM_NR].try_into().expect("tile");
        let mut t3: [f32; GEMM_NR] = c3[j..j + GEMM_NR].try_into().expect("tile");
        for p in 0..k {
            let bt: &[f32; GEMM_NR] = b[p * n + j..p * n + j + GEMM_NR].try_into().expect("tile");
            let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
            for l in 0..GEMM_NR {
                t0[l] += x0 * bt[l];
                t1[l] += x1 * bt[l];
                t2[l] += x2 * bt[l];
                t3[l] += x3 * bt[l];
            }
        }
        c0[j..j + GEMM_NR].copy_from_slice(&t0);
        c1[j..j + GEMM_NR].copy_from_slice(&t1);
        c2[j..j + GEMM_NR].copy_from_slice(&t2);
        c3[j..j + GEMM_NR].copy_from_slice(&t3);
        j += GEMM_NR;
    }
    for jj in tiles..n {
        let (mut t0, mut t1, mut t2, mut t3) = (c0[jj], c1[jj], c2[jj], c3[jj]);
        for p in 0..k {
            let bv = b[p * n + jj];
            t0 += a0[p] * bv;
            t1 += a1[p] * bv;
            t2 += a2[p] * bv;
            t3 += a3[p] * bv;
        }
        c0[jj] = t0;
        c1[jj] = t1;
        c2[jj] = t2;
        c3[jj] = t3;
    }
}

/// Remainder rows (fewer than [`GEMM_MR`] left): same tile shape, one row.
/// `c_row` may be narrower than `n` (the AVX2 kernel re-enters here for
/// column tails with `b` re-based to the tail's first column); `n` is
/// always the stride between `b` rows.
pub(crate) fn gemm_row_single(a_row: &[f32], b: &[f32], c_row: &mut [f32], k: usize, n: usize) {
    let cols = c_row.len();
    let tiles = cols - cols % GEMM_NR;
    let mut j = 0;
    while j < tiles {
        let mut t: [f32; GEMM_NR] = c_row[j..j + GEMM_NR].try_into().expect("tile");
        for (p, &x) in a_row.iter().enumerate().take(k) {
            let bt: &[f32; GEMM_NR] = b[p * n + j..p * n + j + GEMM_NR].try_into().expect("tile");
            for l in 0..GEMM_NR {
                t[l] += x * bt[l];
            }
        }
        c_row[j..j + GEMM_NR].copy_from_slice(&t);
        j += GEMM_NR;
    }
    for jj in tiles..cols {
        let mut t = c_row[jj];
        for (p, &x) in a_row.iter().enumerate().take(k) {
            t += x * b[p * n + jj];
        }
        c_row[jj] = t;
    }
}

impl Kernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
        gemm_rows(a, b, c, 0, m, k, n);
    }

    fn for_each_row_chunk(
        &self,
        data: &mut [f32],
        row_len: usize,
        _work_per_row: usize,
        f: &(dyn Fn(usize, &mut [f32]) + Sync),
    ) {
        if row_len == 0 || data.is_empty() {
            return;
        }
        debug_assert_eq!(data.len() % row_len, 0, "data must be whole rows");
        f(0, data);
    }
}

/// Runtime-dispatched SIMD kernel: single-threaded like [`ScalarKernel`],
/// but the float GEMM runs on the AVX2 microkernel and downstream binary
/// popcount loops (via [`Kernel::simd_level`]) use hardware popcount when
/// the CPU supports them. Bit-identical to the scalar kernel on every
/// hardware level (see the [`crate::simd`] module docs for the
/// lane-order argument); on non-x86-64 targets or CPUs without the
/// features it *is* the scalar kernel.
pub struct SimdKernel;

impl Kernel for SimdKernel {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn simd_level(&self) -> SimdLevel {
        crate::simd::detected()
    }

    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::detected().has_avx2() {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { crate::simd::x86::gemm_rows_avx2(a, b, c, 0, m, k, n) };
            return;
        }
        gemm_rows(a, b, c, 0, m, k, n);
    }

    fn for_each_row_chunk(
        &self,
        data: &mut [f32],
        row_len: usize,
        _work_per_row: usize,
        f: &(dyn Fn(usize, &mut [f32]) + Sync),
    ) {
        if row_len == 0 || data.is_empty() {
            return;
        }
        debug_assert_eq!(data.len() % row_len, 0, "data must be whole rows");
        f(0, data);
    }
}

/// Number of workers worth spawning for `chunks` independent chunks.
fn worker_count(chunks: usize) -> usize {
    std::thread::available_parallelism().map_or(1, usize::from).min(chunks).max(1)
}

/// Blocked multi-threaded kernel.
pub struct ParallelKernel;

impl Kernel for ParallelKernel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
        let workers = worker_count(m);
        if workers <= 1 || m * k * n < PARALLEL_FLOP_THRESHOLD {
            gemm_rows(a, b, c, 0, m, k, n);
            return;
        }
        // Split output rows into one block per worker; each worker owns a
        // disjoint &mut slice of c, so no synchronisation is needed.
        let rows_per = m.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = &mut c[..m * n];
            let mut row = 0;
            while row < m {
                let take = rows_per.min(m - row);
                let (chunk, tail) = rest.split_at_mut(take * n);
                rest = tail;
                let first = row;
                scope.spawn(move || gemm_rows(a, b, chunk, first, take, k, n));
                row += take;
            }
        });
    }

    fn for_each_row_chunk(
        &self,
        data: &mut [f32],
        row_len: usize,
        work_per_row: usize,
        f: &(dyn Fn(usize, &mut [f32]) + Sync),
    ) {
        if row_len == 0 || data.is_empty() {
            return;
        }
        debug_assert_eq!(data.len() % row_len, 0, "data must be whole rows");
        let rows = data.len() / row_len;
        let workers = worker_count(rows);
        if workers <= 1 || rows * work_per_row < PARALLEL_FLOP_THRESHOLD {
            f(0, data);
            return;
        }
        let rows_per = rows.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut row = 0;
            while row < rows {
                let take = rows_per.min(rows - row);
                let (chunk, tail) = rest.split_at_mut(take * row_len);
                rest = tail;
                let first = row;
                scope.spawn(move || f(first, chunk));
                row += take;
            }
        });
    }

    fn sum(&self, data: &[f32]) -> f32 {
        let blocks = data.len().div_ceil(SUM_BLOCK);
        let workers = worker_count(blocks);
        if workers <= 1 || data.len() < PARALLEL_FLOP_THRESHOLD {
            return sum_block_serial(data);
        }
        // Same fixed-size block partials as the serial path, computed
        // concurrently and reduced in block order — bit-identical to
        // ScalarKernel::sum on any core count.
        let mut partials = vec![0.0f32; blocks];
        std::thread::scope(|scope| {
            let blocks_per = blocks.div_ceil(workers);
            for (w, out) in partials.chunks_mut(blocks_per).enumerate() {
                let start = w * blocks_per * SUM_BLOCK;
                let slice = &data[start..(start + out.len() * SUM_BLOCK).min(data.len())];
                scope.spawn(move || {
                    for (o, c) in out.iter_mut().zip(slice.chunks(SUM_BLOCK)) {
                        *o = c.iter().sum();
                    }
                });
            }
        });
        partials.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, seed: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32 + seed) * 0.37).sin()).collect()
    }

    #[test]
    fn kernels_agree_on_gemm() {
        let (m, k, n) = (37, 29, 41);
        let a = filled(m * k, 1.0);
        let b = filled(k * n, 2.0);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        ScalarKernel.gemm(&a, &b, &mut c1, m, k, n);
        ParallelKernel.gemm(&a, &b, &mut c2, m, k, n);
        assert_eq!(c1, c2, "parallel gemm must be bit-identical");
    }

    /// The plain ikj loop whose per-element summation order the blocked
    /// microkernel must reproduce exactly.
    fn reference_gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut t = c[i * n + j];
                for p in 0..k {
                    t += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = t;
            }
        }
    }

    #[test]
    fn blocked_microkernel_is_bit_identical_to_plain_ikj() {
        // Sizes straddling every tile boundary: row counts around the
        // 4-row quad, column counts around the 8-wide tile, including a
        // zero-heavy `a` (the old kernel's zero-skip must have been
        // bit-neutral).
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 9, 8), (5, 13, 9), (8, 27, 16), (13, 7, 23), (17, 64, 33)]
        {
            let mut a = filled(m * k, 9.0);
            for v in a.iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b = filled(k * n, 10.0);
            let mut want = filled(m * n, 11.0);
            let mut got = want.clone();
            reference_gemm(&a, &b, &mut want, m, k, n);
            ScalarKernel.gemm(&a, &b, &mut got, m, k, n);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m}, {k}, {n})"
            );
        }
    }

    #[test]
    fn kernels_agree_on_large_gemm() {
        // Above the threading threshold.
        let (m, k, n) = (64, 64, 64);
        let a = filled(m * k, 3.0);
        let b = filled(k * n, 4.0);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        ScalarKernel.gemm(&a, &b, &mut c1, m, k, n);
        ParallelKernel.gemm(&a, &b, &mut c2, m, k, n);
        assert_eq!(c1, c2);
    }

    #[test]
    fn row_chunks_cover_every_row_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rows = 63;
        let row_len = 17;
        let mut data = vec![0.0f32; rows * row_len];
        let visits = AtomicUsize::new(0);
        ParallelKernel.for_each_row_chunk(&mut data, row_len, 1 << 20, &|first, chunk| {
            assert_eq!(chunk.len() % row_len, 0);
            for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (first + r) as f32;
                }
            }
            visits.fetch_add(chunk.len() / row_len, Ordering::Relaxed);
        });
        assert_eq!(visits.load(Ordering::Relaxed), rows);
        for r in 0..rows {
            assert!(data[r * row_len..(r + 1) * row_len].iter().all(|&v| v == r as f32));
        }
    }

    #[test]
    fn kernels_agree_bitwise_on_sum() {
        for n in [100, SUM_BLOCK, SUM_BLOCK + 17, 100_000] {
            let data = filled(n, 5.0);
            assert_eq!(ScalarKernel.sum(&data), ParallelKernel.sum(&data), "n = {n}");
        }
    }

    #[test]
    fn blocked_sum_stays_close_to_sequential() {
        let data = filled(100_000, 5.0);
        let sequential: f32 = data.iter().sum();
        assert!((ScalarKernel.sum(&data) - sequential).abs() < 1e-2);
    }

    #[test]
    fn with_backend_composes_with_thread_scopes_without_touching_global_state() {
        // Process-global selection as a fresh thread sees it.
        let global_before = std::thread::spawn(active).join().unwrap();
        with_thread_backend(Backend::Scalar, || {
            with_backend(Backend::Parallel, || {
                // The innermost override wins for the closure.
                assert_eq!(active(), Backend::Parallel);
            });
            assert_eq!(active(), Backend::Scalar, "outer scope restored");
        });
        let global_after = std::thread::spawn(active).join().unwrap();
        assert_eq!(global_before, global_after, "global selection must be untouched");
    }

    #[test]
    fn backend_parsing_is_case_insensitive() {
        for s in ["scalar", "Scalar", "SCALAR"] {
            assert_eq!(s.parse::<Backend>().unwrap(), Backend::Scalar, "{s}");
        }
        for s in ["parallel", "Parallel", "PARALLEL"] {
            assert_eq!(s.parse::<Backend>().unwrap(), Backend::Parallel, "{s}");
        }
        for s in ["simd", "Simd", "SIMD"] {
            assert_eq!(s.parse::<Backend>().unwrap(), Backend::Simd, "{s}");
        }
    }

    #[test]
    fn backend_parsing_rejects_unknown_values_with_a_clear_error() {
        for s in ["gpu", "", "scalar ", "auto", "avx2", "simd "] {
            let err = s.parse::<Backend>().unwrap_err().to_string();
            assert!(
                err.contains("scalar") && err.contains("parallel") && err.contains("simd"),
                "error for {s:?} must name the valid values, got: {err}"
            );
        }
    }

    #[test]
    fn backend_display_round_trips_through_from_str() {
        for be in [Backend::Scalar, Backend::Parallel, Backend::Simd] {
            assert_eq!(be.to_string(), be.name());
            assert_eq!(be.to_string().parse::<Backend>().unwrap(), be);
            assert_eq!(be.kernel().name(), be.name());
        }
    }

    #[test]
    fn detected_features_match_the_simd_kernel() {
        // Backend::detected() is the capability the simd kernel reports;
        // the other kernels never dispatch SIMD.
        assert_eq!(Backend::detected(), SimdKernel.simd_level());
        assert_eq!(ScalarKernel.simd_level(), SimdLevel::None);
        assert_eq!(ParallelKernel.simd_level(), SimdLevel::None);
    }

    #[test]
    fn simd_gemm_is_bit_identical_to_scalar_across_tile_boundaries() {
        // Same hostile shape set as the ikj-reference test: row counts
        // around the 4-row quad, column counts around (and below) the
        // 8-wide vector tile, odd k, plus a zero-heavy `a`.
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 9, 8), (5, 13, 9), (8, 27, 16), (13, 7, 23), (17, 64, 33), (4, 3, 4)]
        {
            let mut a = filled(m * k, 9.0);
            for v in a.iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b = filled(k * n, 10.0);
            let mut want = filled(m * n, 11.0);
            let mut got = want.clone();
            ScalarKernel.gemm(&a, &b, &mut want, m, k, n);
            SimdKernel.gemm(&a, &b, &mut got, m, k, n);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "({m}, {k}, {n})"
            );
        }
    }

    #[test]
    fn simd_row_chunks_behave_like_scalar() {
        let rows = 9;
        let row_len = 5;
        let mut data = vec![0.0f32; rows * row_len];
        SimdKernel.for_each_row_chunk(&mut data, row_len, 1, &|first, chunk| {
            assert_eq!(first, 0, "single-threaded kernel hands over everything at once");
            assert_eq!(chunk.len(), rows * row_len);
            chunk.iter_mut().for_each(|v| *v = 1.0);
        });
        assert!(data.iter().all(|&v| v == 1.0));
        SimdKernel.for_each_row_chunk(&mut [], 5, 1, &|_, _| panic!("no rows, no calls"));
    }

    #[test]
    fn thread_backend_overrides_and_restores() {
        let prev = active();
        with_thread_backend(Backend::Parallel, || {
            assert_eq!(active(), Backend::Parallel);
            // Nested scopes stack.
            with_thread_backend(Backend::Scalar, || {
                assert_eq!(active(), Backend::Scalar);
            });
            assert_eq!(active(), Backend::Parallel);
        });
        assert_eq!(active(), prev);
    }

    #[test]
    fn thread_backend_does_not_leak_to_other_threads() {
        with_thread_backend(Backend::Parallel, || {
            // A fresh thread has no thread-scoped handle installed.
            let seen = std::thread::spawn(|| THREAD_BACKEND.with(Cell::get)).join().unwrap();
            assert_eq!(seen, None);
            assert_eq!(THREAD_BACKEND.with(Cell::get), Some(Backend::Parallel));
        });
    }

    #[test]
    fn backend_override_round_trip() {
        let prev = active();
        with_backend(Backend::Parallel, || {
            assert_eq!(active(), Backend::Parallel);
            assert_eq!(kernel().name(), "parallel");
        });
        with_backend(Backend::Scalar, || {
            assert_eq!(active(), Backend::Scalar);
        });
        assert_eq!(active(), prev);
    }
}
