//! Error type shared by all tensor operations.

use std::fmt;

/// Error returned by fallible tensor operations.
///
/// The `Display` form is a lowercase, punctuation-free sentence describing
/// what went wrong, per Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or after
    /// broadcasting) did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The number of elements implied by a shape does not match the
    /// provided data length.
    LengthMismatch {
        /// Number of elements the shape calls for.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An operation received a tensor of unsupported rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank it was given.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A structural parameter (stride, kernel size, upscale factor, ...)
    /// was invalid for the given input.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "{op} expects rank {expected} but got rank {actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias used across the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
