//! Runtime CPU-feature detection and the x86-64 SIMD microkernels behind
//! [`Backend::Simd`](crate::backend::Backend::Simd).
//!
//! Detection runs once per process through `is_x86_feature_detected!` and
//! is summarized as a [`SimdLevel`] capability ladder:
//!
//! * [`SimdLevel::Avx2`] — AVX2 + POPCNT: the 8-lane float GEMM microkernel
//!   and the vectorized XNOR-popcount binary GEMM both engage;
//! * [`SimdLevel::Sse42`] — SSE4.2 + POPCNT: the float GEMM stays scalar,
//!   binary popcount loops use the hardware `popcnt` instruction;
//! * [`SimdLevel::None`] — non-x86-64 targets or older CPUs: every loop
//!   falls back to the scalar reference kernel.
//!
//! Selecting the `simd` backend is therefore always valid — it degrades
//! gracefully instead of faulting on hardware without the instructions.
//!
//! # Bit-identity contract
//!
//! The AVX2 GEMM is **bit-identical** (`f32::to_bits`) to the scalar
//! kernel by construction, not by tolerance. The scalar microkernel
//! accumulates each output element independently in ascending-`k` order
//! with a separate multiply and add per product
//! (`t[l] += a[p] * b[p*n + l]`). The AVX2 kernel maps each 8-wide
//! accumulator tile onto one `__m256` register and issues the *same*
//! per-lane operations (`_mm256_mul_ps` then `_mm256_add_ps` — never FMA,
//! whose single rounding would diverge) in the same ascending-`k` order.
//! Lanes never reduce across each other: every output element is exactly
//! one lane, so the summation order per element is identical to the plain
//! ikj reference on every path. Column tails (`n % 8`) and row remainders
//! (`rows % 4`) reuse the scalar helpers outright. The binary
//! XNOR-popcount kernels are integer-exact, so they are trivially
//! identical on every level.

#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// CPU capability ladder found at runtime, ordered weakest to strongest.
///
/// Reported by [`Backend::detected`](crate::backend::Backend::detected)
/// and carried per kernel via
/// [`Kernel::simd_level`](crate::backend::Kernel::simd_level): the scalar
/// and parallel kernels always report [`SimdLevel::None`] (they never
/// dispatch SIMD), the simd kernel reports what the CPU offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// No usable vector extensions (non-x86-64, or a CPU without SSE4.2):
    /// scalar reference loops everywhere.
    None,
    /// SSE4.2 + POPCNT: hardware-popcount binary GEMM, scalar float GEMM.
    Sse42,
    /// AVX2 + POPCNT: vectorized float GEMM and XNOR-popcount binary GEMM.
    Avx2,
}

impl SimdLevel {
    /// Whether the 8-lane AVX2 float GEMM microkernel engages.
    #[must_use]
    pub fn has_avx2(self) -> bool {
        self == SimdLevel::Avx2
    }

    /// Whether binary popcount loops use the hardware `popcnt`
    /// instruction (true at both SSE4.2 and AVX2 levels).
    #[must_use]
    pub fn has_popcnt(self) -> bool {
        self >= SimdLevel::Sse42
    }

    /// Stable display name (`"none"` / `"sse4.2"` / `"avx2"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::None => "none",
            SimdLevel::Sse42 => "sse4.2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The CPU features found on this machine, probed once and cached.
#[must_use]
pub fn detected() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            // POPCNT is checked explicitly even though every AVX2-era CPU
            // has it: the binary kernels rely on it at both levels.
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt") {
                SimdLevel::Avx2
            } else if is_x86_feature_detected!("sse4.2") && is_x86_feature_detected!("popcnt") {
                SimdLevel::Sse42
            } else {
                SimdLevel::None
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::None
    }
}

/// The AVX2 float GEMM microkernel. Compiled only on x86-64; callers gate
/// on [`detected`]`().has_avx2()`.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use crate::backend::{gemm_row_single, GEMM_MR, GEMM_NR};
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };

    /// AVX2 twin of `backend::gemm_rows`: output rows in [`GEMM_MR`]-row
    /// groups whose [`GEMM_NR`]-wide column tiles live in one `__m256`
    /// register each across the whole `k` loop.
    ///
    /// Per-lane semantics are identical to the scalar microkernel — each
    /// lane runs `t += a[p] * b[p*n + lane]` as a separate IEEE multiply
    /// and add in ascending-`p` order (no FMA, no cross-lane reduction) —
    /// so the result is bit-identical to `ScalarKernel::gemm`. Column
    /// tails and remainder rows call the scalar helpers directly.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime
    /// (`is_x86_feature_detected!("avx2")`, via [`super::detected`]).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn gemm_rows_avx2(
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        first_row: usize,
        rows: usize,
        k: usize,
        n: usize,
    ) {
        debug_assert!(a.len() >= (first_row + rows) * k);
        debug_assert!(b.len() >= k * n && c.len() >= rows * n);
        let tiles = n - n % GEMM_NR;
        let mut r = 0;
        while r + GEMM_MR <= rows {
            let base = (first_row + r) * k;
            let a0 = &a[base..base + k];
            let a1 = &a[base + k..base + 2 * k];
            let a2 = &a[base + 2 * k..base + 3 * k];
            let a3 = &a[base + 3 * k..base + 4 * k];
            let block = &mut c[r * n..(r + GEMM_MR) * n];
            let (c0, block) = block.split_at_mut(n);
            let (c1, block) = block.split_at_mut(n);
            let (c2, c3) = block.split_at_mut(n);
            let mut j = 0;
            while j < tiles {
                // SAFETY: j + GEMM_NR <= tiles <= n bounds every 8-lane
                // load/store below; b rows are k × n so p*n + j + 8 <= k*n.
                let mut t0: __m256 = unsafe { _mm256_loadu_ps(c0.as_ptr().add(j)) };
                let mut t1: __m256 = unsafe { _mm256_loadu_ps(c1.as_ptr().add(j)) };
                let mut t2: __m256 = unsafe { _mm256_loadu_ps(c2.as_ptr().add(j)) };
                let mut t3: __m256 = unsafe { _mm256_loadu_ps(c3.as_ptr().add(j)) };
                for p in 0..k {
                    let bt = unsafe { _mm256_loadu_ps(b.as_ptr().add(p * n + j)) };
                    // mul then add, matching the scalar kernel's two
                    // roundings per product exactly.
                    t0 = _mm256_add_ps(t0, _mm256_mul_ps(_mm256_set1_ps(a0[p]), bt));
                    t1 = _mm256_add_ps(t1, _mm256_mul_ps(_mm256_set1_ps(a1[p]), bt));
                    t2 = _mm256_add_ps(t2, _mm256_mul_ps(_mm256_set1_ps(a2[p]), bt));
                    t3 = _mm256_add_ps(t3, _mm256_mul_ps(_mm256_set1_ps(a3[p]), bt));
                }
                unsafe {
                    _mm256_storeu_ps(c0.as_mut_ptr().add(j), t0);
                    _mm256_storeu_ps(c1.as_mut_ptr().add(j), t1);
                    _mm256_storeu_ps(c2.as_mut_ptr().add(j), t2);
                    _mm256_storeu_ps(c3.as_mut_ptr().add(j), t3);
                }
                j += GEMM_NR;
            }
            if tiles < n {
                // Column tail: the scalar single-row helper over the tail
                // columns (shifting b by `tiles` re-bases its column
                // indexing; the tail is narrower than a tile, so the
                // helper goes straight to its scalar loop).
                gemm_row_single(a0, &b[tiles..], &mut c0[tiles..], k, n);
                gemm_row_single(a1, &b[tiles..], &mut c1[tiles..], k, n);
                gemm_row_single(a2, &b[tiles..], &mut c2[tiles..], k, n);
                gemm_row_single(a3, &b[tiles..], &mut c3[tiles..], k, n);
            }
            r += GEMM_MR;
        }
        while r < rows {
            let base = (first_row + r) * k;
            gemm_row_single(&a[base..base + k], b, &mut c[r * n..(r + 1) * n], k, n);
            r += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_and_consistent() {
        let level = detected();
        assert_eq!(level, detected(), "detection must be cached and stable");
        if level.has_avx2() {
            assert!(level.has_popcnt(), "AVX2 level implies hardware popcount");
        }
        assert_eq!(level.name(), level.to_string());
    }

    #[test]
    fn level_ladder_orders_capabilities() {
        assert!(SimdLevel::None < SimdLevel::Sse42);
        assert!(SimdLevel::Sse42 < SimdLevel::Avx2);
        assert!(!SimdLevel::None.has_popcnt());
        assert!(SimdLevel::Sse42.has_popcnt());
        assert!(!SimdLevel::Sse42.has_avx2());
        assert!(SimdLevel::Avx2.has_avx2() && SimdLevel::Avx2.has_popcnt());
    }
}
