//! Reusable scratch buffers for the zero-allocation inference path.
//!
//! Every hot kernel that used to allocate per call (float im2col, the
//! bit-packed activation bitmap and bit-im2col of the binary convolution,
//! shifted-input copies, gate maps, batch-norm reductions) instead writes
//! into a [`ConvScratch`] owned by the caller. Buffers grow on first use
//! and are **never shrunk**, so after a warm-up forward at a given shape
//! the steady state performs no heap allocation.
//!
//! Contents are *stale between uses by design*: a kernel taking a scratch
//! buffer must fully overwrite the region it reads back. The [`sized`]
//! helper hands out exactly-sized views without zeroing.

/// Grow-only view: returns `&mut buf[..len]`, growing the buffer when it
/// is too short. The returned region may contain stale data from a
/// previous use — callers must fully overwrite whatever they later read.
pub fn sized<T: Copy + Default>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
    &mut buf[..len]
}

/// Bit-domain scratch of the packed binary convolution: the channel-major
/// activation bitmap, the bit-im2col patch matrix, and the border-pixel
/// tap bookkeeping.
#[derive(Default)]
pub struct BitScratch {
    /// Channel-major sign bitmap of one image: `h·w · ceil(IC/64)` words.
    pub act: Vec<u64>,
    /// Bit-im2col patches: `oh·ow · k² · ceil(IC/64)` words.
    pub patches: Vec<u64>,
    /// Per-(pixel, tap) in-bounds flag — written (and read) for border
    /// pixels only; interior pixels take the branch-free path.
    pub tap_ok: Vec<u8>,
    /// Per-pixel in-bounds channel count — border pixels only.
    pub valid: Vec<i32>,
}

/// The full per-stream convolution scratch: float buffers for im2col,
/// shifted inputs, gate maps and reductions, plus the [`BitScratch`] of
/// the binary kernels. One `ConvScratch` serves every layer of a network
/// because layers execute sequentially.
#[derive(Default)]
pub struct ConvScratch {
    /// Float im2col matrix (also reused as the widest reduction /
    /// resampling temporary).
    pub col: Vec<f32>,
    /// Shifted copy of a layer input (β-threshold / per-image-mean
    /// shifts).
    pub shifted: Vec<f32>,
    /// Per-pixel gate map (spatial re-scaling branch) and mid-width
    /// reductions.
    pub plane: Vec<f32>,
    /// Per-channel temporaries (pooled activations, folded gates).
    pub chan: Vec<f32>,
    /// Second per-channel temporary live at the same time as [`chan`].
    ///
    /// [`chan`]: ConvScratch::chan
    pub chan2: Vec<f32>,
    /// Bit-domain scratch of the packed binary convolution.
    pub bits: BitScratch,
}

impl ConvScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_grows_and_reuses_without_shrinking() {
        let mut buf: Vec<f32> = Vec::new();
        sized(&mut buf, 8).copy_from_slice(&[1.0; 8]);
        assert_eq!(buf.len(), 8);
        // A shorter request reuses the same storage (stale tail kept).
        assert_eq!(sized(&mut buf, 4).len(), 4);
        assert_eq!(buf.len(), 8);
        // A longer one grows; the old prefix is preserved.
        assert_eq!(sized(&mut buf, 16).len(), 16);
        assert_eq!(buf[..8], [1.0; 8]);
    }

    #[test]
    fn scratch_defaults_are_empty() {
        let s = ConvScratch::new();
        assert!(s.col.is_empty() && s.bits.act.is_empty());
    }
}
