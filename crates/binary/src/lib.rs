//! # scales-binary
//!
//! Bit-packed binary inference kernels and BNN cost accounting for the
//! SCALES reproduction.
//!
//! * [`pack::PackedBits`] — sign vectors packed into `u64` words with a
//!   validity mask, and the XNOR-popcount dot product.
//! * [`xnor::BinaryConv2d`] / [`xnor::BinaryLinear`] — deployment-path
//!   layers that are bit-exact against the float reference on `±1` inputs.
//! * [`count`] — the shared XNOR-popcount agree primitives every inner
//!   loop above dispatches through (scalar, hardware-popcount, and AVX2
//!   variants selected by [`scales_tensor::SimdLevel`]), plus the paper's
//!   cost model (`OPs = OPs_f + OPs_b/64`, `Params = Params_f + Params_b/32`).
//!
//! ```
//! use scales_binary::pack::PackedBits;
//! let a = PackedBits::from_signs(&[1.0, -1.0, 1.0]);
//! let b = PackedBits::from_signs(&[1.0, 1.0, 1.0]);
//! assert_eq!(a.dot(&b), 1); // +1 − 1 + 1
//! ```

pub mod count;
pub mod pack;
pub mod xnor;

pub use count::CostReport;
pub use pack::PackedBits;
pub use xnor::{BinaryConv2d, BinaryLinear};
