//! Sign bit-packing.
//!
//! A binarized vector over `{−1, +1}` is stored as bits in `u64` words:
//! bit = 1 encodes `+1`, bit = 0 encodes `−1`, with `sign(0) = +1` matching
//! the autograd binarizers. A parallel *mask* records which lanes are valid
//! so zero-padded convolution taps contribute exactly 0 to the dot product,
//! keeping the packed kernels bit-exact against the float reference.

/// A bit-packed sign vector with a validity mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBits {
    bits: Vec<u64>,
    mask: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// Number of `u64` words needed for `len` lanes.
    #[must_use]
    pub fn words_for(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// Pack the signs of a float slice; every lane is valid.
    #[must_use]
    pub fn from_signs(values: &[f32]) -> Self {
        let len = values.len();
        let words = Self::words_for(len);
        let mut bits = vec![0u64; words];
        let mut mask = vec![0u64; words];
        for (i, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                bits[i / 64] |= 1 << (i % 64);
            }
            mask[i / 64] |= 1 << (i % 64);
        }
        Self { bits, mask, len }
    }

    /// Pack with an explicit validity mask (invalid lanes contribute 0 to
    /// dot products — used for padded convolution taps).
    ///
    /// # Panics
    ///
    /// Panics when the two slices differ in length.
    #[must_use]
    pub fn from_signs_masked(values: &[f32], valid: &[bool]) -> Self {
        assert_eq!(values.len(), valid.len(), "mask length mismatch");
        let len = values.len();
        let words = Self::words_for(len);
        let mut bits = vec![0u64; words];
        let mut mask = vec![0u64; words];
        for (i, (&v, &ok)) in values.iter().zip(valid.iter()).enumerate() {
            if ok {
                mask[i / 64] |= 1 << (i % 64);
                if v >= 0.0 {
                    bits[i / 64] |= 1 << (i % 64);
                }
            }
        }
        Self { bits, mask, len }
    }

    /// Lane count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed sign words.
    #[must_use]
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// The validity mask words.
    #[must_use]
    pub fn mask(&self) -> &[u64] {
        &self.mask
    }

    /// Unpack back to `±1.0` floats (invalid lanes become `0.0`).
    #[must_use]
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| {
                let w = i / 64;
                let b = 1u64 << (i % 64);
                if self.mask[w] & b == 0 {
                    0.0
                } else if self.bits[w] & b != 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    /// XNOR-popcount dot product. Valid lanes where both operands agree
    /// contribute `+1`, disagreements `−1`, invalid lanes (in either
    /// operand) contribute `0`:
    ///
    /// ```text
    /// dot = 2·popcount(¬(a ⊕ b) ∧ m) − popcount(m),   m = mask_a ∧ mask_b
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when the operands differ in lane count.
    #[must_use]
    pub fn dot(&self, other: &PackedBits) -> i32 {
        assert_eq!(self.len, other.len, "dot length mismatch");
        let mut agree = 0u32;
        let mut valid = 0u32;
        for ((&a, &b), (&ma, &mb)) in self
            .bits
            .iter()
            .zip(other.bits.iter())
            .zip(self.mask.iter().zip(other.mask.iter()))
        {
            let m = ma & mb;
            agree += crate::count::xnor_word_agree(a, b, m);
            valid += m.count_ones();
        }
        2 * agree as i32 - valid as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_signs() {
        let v = vec![1.5, -0.2, 0.0, -3.0, 0.7];
        let p = PackedBits::from_signs(&v);
        assert_eq!(p.to_signs(), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    #[test]
    fn dot_matches_float_reference() {
        let a = vec![1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        let b = vec![1.0, 1.0, -1.0, 1.0, -1.0, 1.0, 1.0];
        let pa = PackedBits::from_signs(&a);
        let pb = PackedBits::from_signs(&b);
        let expect: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(pa.dot(&pb), expect as i32);
    }

    #[test]
    fn masked_lanes_contribute_zero() {
        let a = PackedBits::from_signs_masked(&[1.0, -1.0, 1.0], &[true, false, true]);
        let b = PackedBits::from_signs(&[1.0, -1.0, -1.0]);
        // lane0: +1, lane1 masked: 0, lane2: −1 → total 0.
        assert_eq!(a.dot(&b), 0);
    }

    #[test]
    fn dot_spans_multiple_words() {
        let n = 200;
        let a: Vec<f32> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
        let b: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let expect: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
        assert_eq!(PackedBits::from_signs(&a).dot(&PackedBits::from_signs(&b)), expect as i32);
    }

    #[test]
    fn words_for_boundary() {
        assert_eq!(PackedBits::words_for(0), 0);
        assert_eq!(PackedBits::words_for(64), 1);
        assert_eq!(PackedBits::words_for(65), 2);
    }
}
