//! XNOR-popcount primitives and cost accounting.
//!
//! # Popcount primitives
//!
//! The three hand-rolled XNOR-popcount inner loops of this crate —
//! [`PackedBits::dot`](crate::pack::PackedBits::dot), and the interior and
//! masked-border paths of the
//! [`BinaryConv2d`](crate::xnor::BinaryConv2d) binary GEMM — all bottom
//! out in the `#[inline]` helpers here, so the scalar loops have one
//! source of truth ([`xnor_word_agree`] / [`xnor_tap_agree`] /
//! [`xnor_row_agree`] / [`xnor_border_agree`]) and the hardware-popcount
//! SIMD variants another ([`x86`], x86-64 only). [`row_agree_for`] /
//! [`border_agree_for`] resolve a [`SimdLevel`] to the strongest safe
//! implementation — that is how the binary GEMM picks its inner loop from
//! the backend's [`Kernel::simd_level`](scales_tensor::Kernel::simd_level).
//! Every variant is integer-exact: agreements are counted, never
//! approximated, so results are identical on all levels.
//!
//! # Cost accounting
//!
//! The paper's conventions (§V-E):
//!
//! ```text
//! OPs    = OPs_f    + OPs_b / 64
//! Params = Params_f + Params_b / 32
//! ```
//!
//! following Bi-Real Net and DoReFa-Net. Binary multiply-accumulates run 64
//! to a word on 64-bit hardware; binary weights cost 1 bit against a 32-bit
//! float.

use scales_tensor::SimdLevel;
use std::fmt;

/// XNOR-agree count of one word pair under a validity mask: the number of
/// lanes where `a` and `b` carry the same sign bit *and* the mask is set.
/// The atom every binary dot product in this crate is built from.
#[inline]
#[must_use]
pub fn xnor_word_agree(a: u64, b: u64, mask: u64) -> u32 {
    (!(a ^ b) & mask).count_ones()
}

/// Agree count over one bit-im2col tap of `wpp` channel words: full-lane
/// words except the last, which is masked by `mask` (`u64::MAX` when the
/// channel count fills the word).
///
/// # Panics
///
/// Panics when the slices are empty or differ in length.
#[inline]
#[must_use]
pub fn xnor_tap_agree(w: &[u64], p: &[u64], mask: u64) -> u32 {
    assert_eq!(w.len(), p.len(), "tap word count mismatch");
    let last = w.len() - 1;
    let mut agree = 0u32;
    for i in 0..last {
        agree += xnor_word_agree(w[i], p[i], u64::MAX);
    }
    agree + xnor_word_agree(w[last], p[last], mask)
}

/// Shared loop body of the interior row agree: `w` and `p` are a
/// contiguous run of taps (`len / wpp` of them), each `wpp` words with the
/// last masked. `#[inline(always)]` so the `#[target_feature]` wrappers in
/// [`x86`] recompile this exact loop with hardware popcount enabled — one
/// source of truth for the loop, per-ISA codegen.
#[inline(always)]
fn row_agree_generic(w: &[u64], p: &[u64], wpp: usize, mask: u64) -> u32 {
    debug_assert_eq!(w.len(), p.len());
    debug_assert!(wpp > 0 && w.len().is_multiple_of(wpp));
    if wpp == 1 {
        // Single channel word per tap: every word takes the same mask.
        // Four independent accumulators so the popcounts pipeline.
        let (mut a0, mut a1, mut a2, mut a3) = (0u32, 0u32, 0u32, 0u32);
        let mut i = 0;
        while i + 4 <= w.len() {
            a0 += xnor_word_agree(w[i], p[i], mask);
            a1 += xnor_word_agree(w[i + 1], p[i + 1], mask);
            a2 += xnor_word_agree(w[i + 2], p[i + 2], mask);
            a3 += xnor_word_agree(w[i + 3], p[i + 3], mask);
            i += 4;
        }
        let mut agree = a0 + a1 + a2 + a3;
        while i < w.len() {
            agree += xnor_word_agree(w[i], p[i], mask);
            i += 1;
        }
        agree
    } else {
        let mut agree = 0u32;
        let mut base = 0;
        while base < w.len() {
            agree += xnor_tap_agree(&w[base..base + wpp], &p[base..base + wpp], mask);
            base += wpp;
        }
        agree
    }
}

/// Agree count over a contiguous interior bit-im2col row (`taps × wpp`
/// words, the last word of each tap masked by `mask`) — the branch-free
/// inner product of the binary GEMM's interior fast path.
#[inline]
#[must_use]
pub fn xnor_row_agree(w: &[u64], p: &[u64], wpp: usize, mask: u64) -> u32 {
    row_agree_generic(w, p, wpp, mask)
}

/// Shared loop body of the masked border agree: taps whose `tap_ok` flag
/// is 0 (out-of-bounds receptive-field positions) are skipped outright.
#[inline(always)]
fn border_agree_generic(w: &[u64], p: &[u64], tap_ok: &[u8], wpp: usize, mask: u64) -> u32 {
    debug_assert_eq!(w.len(), p.len());
    debug_assert_eq!(tap_ok.len() * wpp, w.len());
    let mut agree = 0u32;
    for (tap, &ok) in tap_ok.iter().enumerate() {
        if ok == 0 {
            continue;
        }
        let base = tap * wpp;
        agree += xnor_tap_agree(&w[base..base + wpp], &p[base..base + wpp], mask);
    }
    agree
}

/// Agree count over a masked border bit-im2col row: like
/// [`xnor_row_agree`] but only taps flagged valid in `tap_ok` count.
#[inline]
#[must_use]
pub fn xnor_border_agree(w: &[u64], p: &[u64], tap_ok: &[u8], wpp: usize, mask: u64) -> u32 {
    border_agree_generic(w, p, tap_ok, wpp, mask)
}

/// Signature of an interior row-agree implementation
/// (`(w, p, wpp, mask) -> agree`), as returned by [`row_agree_for`].
pub type RowAgreeFn = fn(&[u64], &[u64], usize, u64) -> u32;

/// Signature of a masked border row-agree implementation
/// (`(w, p, tap_ok, wpp, mask) -> agree`), as returned by
/// [`border_agree_for`].
pub type BorderAgreeFn = fn(&[u64], &[u64], &[u8], usize, u64) -> u32;

/// The interior row-agree implementation for a CPU feature level:
/// AVX2 → the 256-bit XNOR + `_popcnt64` kernel, SSE4.2 → the scalar loop
/// compiled with hardware popcount, otherwise the portable scalar loop.
///
/// The level is clamped to what the CPU actually reports
/// ([`scales_tensor::simd::detected`]), so the returned function is safe
/// to call no matter what the caller passes.
#[must_use]
pub fn row_agree_for(level: SimdLevel) -> RowAgreeFn {
    #[cfg(target_arch = "x86_64")]
    {
        let level = level.min(scales_tensor::simd::detected());
        if level.has_avx2() {
            // SAFETY: AVX2 + POPCNT presence is guaranteed by the clamp
            // against runtime detection above.
            return |w, p, wpp, mask| unsafe { x86::xnor_row_agree_avx2(w, p, wpp, mask) };
        }
        if level.has_popcnt() {
            // SAFETY: POPCNT presence guaranteed by the same clamp.
            return |w, p, wpp, mask| unsafe { x86::xnor_row_agree_popcnt(w, p, wpp, mask) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;
    xnor_row_agree
}

/// The border row-agree implementation for a CPU feature level (hardware
/// popcount from SSE4.2 up); same safety clamp as [`row_agree_for`].
#[must_use]
pub fn border_agree_for(level: SimdLevel) -> BorderAgreeFn {
    #[cfg(target_arch = "x86_64")]
    {
        if level.min(scales_tensor::simd::detected()).has_popcnt() {
            // SAFETY: POPCNT presence guaranteed by the detection clamp.
            return |w, p, ok, wpp, mask| unsafe { x86::xnor_border_agree_popcnt(w, p, ok, wpp, mask) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;
    xnor_border_agree
}

/// Hardware-popcount variants of the agree loops, dispatched through
/// [`row_agree_for`] / [`border_agree_for`]. x86-64 only.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use core::arch::x86_64::{
        __m256i, _mm256_andnot_si256, _mm256_extract_epi64, _mm256_loadu_si256, _mm256_set1_epi64x,
        _mm256_xor_si256, _popcnt64,
    };

    /// The scalar interior loop recompiled with the `popcnt` instruction
    /// enabled (the SSE4.2-level kernel). Integer-exact, so bit-identical
    /// to [`super::xnor_row_agree`] by construction.
    ///
    /// # Safety
    ///
    /// The CPU must support POPCNT (runtime-checked by
    /// [`super::row_agree_for`]).
    #[target_feature(enable = "popcnt")]
    pub unsafe fn xnor_row_agree_popcnt(w: &[u64], p: &[u64], wpp: usize, mask: u64) -> u32 {
        super::row_agree_generic(w, p, wpp, mask)
    }

    /// AVX2 interior row agree: XNOR + mask run 4 words per 256-bit lane
    /// (`_mm256_xor_si256` / `_mm256_andnot_si256`), the four lanes
    /// popcounted with `_popcnt64` into independent accumulators (no
    /// AVX-512 `VPOPCNTDQ` assumed). Multi-word taps (`wpp > 1`) keep the
    /// per-tap structure with hardware popcount. Integer-exact.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 and POPCNT (runtime-checked by
    /// [`super::row_agree_for`]).
    #[target_feature(enable = "avx2", enable = "popcnt")]
    pub unsafe fn xnor_row_agree_avx2(w: &[u64], p: &[u64], wpp: usize, mask: u64) -> u32 {
        debug_assert_eq!(w.len(), p.len());
        debug_assert!(wpp > 0 && w.len().is_multiple_of(wpp));
        if wpp != 1 {
            return super::row_agree_generic(w, p, wpp, mask);
        }
        let n = w.len();
        let vmask: __m256i = _mm256_set1_epi64x(mask as i64);
        let (mut a0, mut a1, mut a2, mut a3) = (0u32, 0u32, 0u32, 0u32);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds both 256-bit loads.
            let wv = unsafe { _mm256_loadu_si256(w.as_ptr().add(i).cast()) };
            let pv = unsafe { _mm256_loadu_si256(p.as_ptr().add(i).cast()) };
            // ¬(w ⊕ p) ∧ mask  ==  andnot(w ⊕ p, mask).
            let agree = _mm256_andnot_si256(_mm256_xor_si256(wv, pv), vmask);
            // _popcnt64 returns 0..=64 per word — u32 accumulation is exact.
            a0 += _popcnt64(_mm256_extract_epi64::<0>(agree)) as u32;
            a1 += _popcnt64(_mm256_extract_epi64::<1>(agree)) as u32;
            a2 += _popcnt64(_mm256_extract_epi64::<2>(agree)) as u32;
            a3 += _popcnt64(_mm256_extract_epi64::<3>(agree)) as u32;
            i += 4;
        }
        let mut agree = a0 + a1 + a2 + a3;
        while i < n {
            agree += super::xnor_word_agree(w[i], p[i], mask);
            i += 1;
        }
        agree
    }

    /// The scalar masked-border loop recompiled with hardware popcount.
    ///
    /// # Safety
    ///
    /// The CPU must support POPCNT (runtime-checked by
    /// [`super::border_agree_for`]).
    #[target_feature(enable = "popcnt")]
    pub unsafe fn xnor_border_agree_popcnt(
        w: &[u64],
        p: &[u64],
        tap_ok: &[u8],
        wpp: usize,
        mask: u64,
    ) -> u32 {
        super::border_agree_generic(w, p, tap_ok, wpp, mask)
    }
}

/// Accumulated parameter and operation counts for a model, split into
/// full-precision and binary contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostReport {
    /// Full-precision parameter count.
    pub fp_params: u64,
    /// Binary (1-bit) parameter count.
    pub bin_params: u64,
    /// Full-precision multiply-accumulate operations.
    pub fp_ops: u64,
    /// Binary multiply-accumulate operations.
    pub bin_ops: u64,
}

impl CostReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Effective parameter count (`Params_f + Params_b/32`), in units of
    /// 32-bit parameters.
    #[must_use]
    pub fn effective_params(&self) -> f64 {
        self.fp_params as f64 + self.bin_params as f64 / 32.0
    }

    /// Effective operation count (`OPs_f + OPs_b/64`).
    #[must_use]
    pub fn effective_ops(&self) -> f64 {
        self.fp_ops as f64 + self.bin_ops as f64 / 64.0
    }

    /// Merge another report into this one.
    pub fn add(&mut self, other: CostReport) {
        self.fp_params += other.fp_params;
        self.bin_params += other.bin_params;
        self.fp_ops += other.fp_ops;
        self.bin_ops += other.bin_ops;
    }

    /// Effective params formatted in thousands ("34K") like the paper.
    #[must_use]
    pub fn params_display(&self) -> String {
        let p = self.effective_params();
        if p >= 1e6 {
            format!("{:.2}M", p / 1e6)
        } else {
            format!("{:.1}K", p / 1e3)
        }
    }

    /// Effective OPs formatted in G ("6.1G") like the paper.
    #[must_use]
    pub fn ops_display(&self) -> String {
        let o = self.effective_ops();
        if o >= 1e9 {
            format!("{:.2}G", o / 1e9)
        } else {
            format!("{:.1}M", o / 1e6)
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} params, {} OPs", self.params_display(), self.ops_display())
    }
}

/// Cost of a 2-D convolution layer at a given output resolution.
///
/// `binary` marks the multiply-accumulates (and weights) as 1-bit.
#[must_use]
pub fn conv2d_cost(
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    out_h: usize,
    out_w: usize,
    binary: bool,
    bias: bool,
) -> CostReport {
    let params = (out_channels * in_channels * kernel * kernel) as u64;
    let macs = params * (out_h * out_w) as u64;
    let bias_params = if bias { out_channels as u64 } else { 0 };
    let bias_ops = if bias { (out_channels * out_h * out_w) as u64 } else { 0 };
    if binary {
        CostReport {
            fp_params: bias_params,
            bin_params: params,
            fp_ops: bias_ops,
            bin_ops: macs,
        }
    } else {
        CostReport {
            fp_params: params + bias_params,
            bin_params: 0,
            fp_ops: macs + bias_ops,
            bin_ops: 0,
        }
    }
}

/// Cost of a linear layer applied over `tokens` positions.
#[must_use]
pub fn linear_cost(in_features: usize, out_features: usize, tokens: usize, binary: bool, bias: bool) -> CostReport {
    let params = (out_features * in_features) as u64;
    let macs = params * tokens as u64;
    let bias_params = if bias { out_features as u64 } else { 0 };
    let bias_ops = if bias { (out_features * tokens) as u64 } else { 0 };
    if binary {
        CostReport { fp_params: bias_params, bin_params: params, fp_ops: bias_ops, bin_ops: macs }
    } else {
        CostReport { fp_params: params + bias_params, bin_params: 0, fp_ops: macs + bias_ops, bin_ops: 0 }
    }
}

/// Cost of the SCALES spatial re-scaling branch (FP 1×1 conv to one channel
/// plus sigmoid and the broadcast multiply).
#[must_use]
pub fn spatial_rescale_cost(channels: usize, out_h: usize, out_w: usize) -> CostReport {
    let hw = (out_h * out_w) as u64;
    CostReport {
        fp_params: channels as u64,
        bin_params: 0,
        // 1×1 conv MACs + sigmoid + rescale multiply.
        fp_ops: channels as u64 * hw + 2 * hw,
        bin_ops: 0,
    }
}

/// Cost of the SCALES channel re-scaling branch (global average pool,
/// Conv1d(k), sigmoid, broadcast multiply). Only `k` FP parameters — the
/// paper's headline efficiency claim versus the `2C²/r` of SE-style blocks.
#[must_use]
pub fn channel_rescale_cost(channels: usize, kernel: usize, out_h: usize, out_w: usize) -> CostReport {
    let hw = (out_h * out_w) as u64;
    let c = channels as u64;
    CostReport {
        fp_params: kernel as u64,
        bin_params: 0,
        // GAP (C·HW adds) + conv1d (C·k MACs) + sigmoid (C) + multiply (C·HW).
        fp_ops: c * hw + c * kernel as u64 + c + c * hw,
        bin_ops: 0,
    }
}

/// Cost of the SE-style channel attention of Real-to-Binary networks
/// (GlobalAvgPool–Linear–ReLU–Linear–Sigmoid with reduction `r`), for the
/// parameter-overhead comparison in the paper's §IV-C.
#[must_use]
pub fn se_block_cost(channels: usize, reduction: usize, out_h: usize, out_w: usize) -> CostReport {
    let c = channels as u64;
    let mid = (channels / reduction.max(1)) as u64;
    let hw = (out_h * out_w) as u64;
    CostReport {
        fp_params: 2 * c * mid,
        bin_params: 0,
        fp_ops: c * hw + 2 * c * mid + c * hw,
        bin_ops: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_conv_is_64x_cheaper_in_ops() {
        let fp = conv2d_cost(64, 64, 3, 100, 100, false, false);
        let bin = conv2d_cost(64, 64, 3, 100, 100, true, false);
        assert_eq!(fp.effective_ops(), bin.effective_ops() * 64.0);
        assert_eq!(fp.effective_params(), bin.effective_params() * 32.0);
    }

    #[test]
    fn report_merges() {
        let mut r = CostReport::new();
        r.add(conv2d_cost(3, 8, 3, 10, 10, false, true));
        r.add(conv2d_cost(8, 8, 3, 10, 10, true, false));
        assert!(r.fp_params > 0 && r.bin_params > 0);
    }

    #[test]
    fn channel_rescale_params_are_just_kernel() {
        let c = channel_rescale_cost(256, 5, 32, 32);
        assert_eq!(c.fp_params, 5);
    }

    #[test]
    fn se_vs_conv1d_ratio_matches_paper() {
        // Paper §IV-C: ratio = 2C²/(r·k) = 1638 when r = 16, C = 256, k = 5.
        let se = se_block_cost(256, 16, 1, 1);
        let ours = channel_rescale_cost(256, 5, 1, 1);
        let ratio = se.fp_params as f64 / ours.fp_params as f64;
        assert!((ratio - 1638.4).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn display_units() {
        let r = CostReport { fp_params: 1_520_000, bin_params: 0, fp_ops: 913_800_000_000, bin_ops: 0 };
        assert_eq!(r.params_display(), "1.52M");
        assert_eq!(r.ops_display(), "913.80G");
    }

    /// Deterministic pseudo-random words (LCG; no rand dependency).
    fn words(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                s ^ (s >> 29)
            })
            .collect()
    }

    #[test]
    fn word_and_tap_agree_count_exactly() {
        assert_eq!(xnor_word_agree(0, 0, u64::MAX), 64);
        assert_eq!(xnor_word_agree(0, u64::MAX, u64::MAX), 0);
        assert_eq!(xnor_word_agree(0b1010, 0b1000, 0b1111), 3);
        assert_eq!(xnor_word_agree(0b1010, 0b1000, 0b0010), 0);
        // Tap: one full word agreeing everywhere + one masked word.
        assert_eq!(xnor_tap_agree(&[u64::MAX, 0b11], &[u64::MAX, 0b10], 0b111), 64 + 2);
    }

    /// Every SIMD level's row/border agree must equal the portable scalar
    /// loop on hostile shapes: word counts that are not a multiple of the
    /// 4-wide vector step, single-word rows, multi-word taps (wpp 2 and 3),
    /// and partial channel masks. Levels above what the CPU supports are
    /// clamped by the selector, so sweeping all of them is always safe.
    #[test]
    fn simd_agree_variants_match_scalar_on_hostile_shapes() {
        let levels = [SimdLevel::None, SimdLevel::Sse42, SimdLevel::Avx2];
        for &(taps, wpp, mask) in &[
            (1usize, 1usize, u64::MAX),      // single word
            (3, 1, u64::MAX),                // not a multiple of 4
            (4, 1, (1u64 << 17) - 1),        // exactly one vector, partial mask
            (9, 1, u64::MAX),                // 3×3 taps, tail of 1
            (25, 1, (1u64 << 63) - 1),       // 5×5 taps, tail of 1, partial
            (9, 2, (1u64 << 16) - 1),        // wpp=2 (e.g. ic=80)
            (9, 3, u64::MAX),                // wpp=3, full last word
            (7, 3, (1u64 << 5) - 1),         // wpp=3, tiny partial mask
        ] {
            let n = taps * wpp;
            let w = words(n, 11);
            let p = words(n, 47);
            let want = xnor_row_agree(&w, &p, wpp, mask);
            let ok: Vec<u8> = (0..taps).map(|t| u8::from(t % 3 != 1)).collect();
            let want_border = xnor_border_agree(&w, &p, &ok, wpp, mask);
            for level in levels {
                let got = row_agree_for(level)(&w, &p, wpp, mask);
                assert_eq!(got, want, "row level={level} taps={taps} wpp={wpp}");
                let got_border = border_agree_for(level)(&w, &p, &ok, wpp, mask);
                assert_eq!(got_border, want_border, "border level={level} taps={taps} wpp={wpp}");
            }
        }
    }

    /// The selectors clamp against runtime detection, so asking for a level
    /// the CPU lacks still returns a callable, correct implementation.
    #[test]
    fn selectors_clamp_to_detected_features() {
        let w = words(8, 3);
        let p = words(8, 5);
        let want = xnor_row_agree(&w, &p, 1, u64::MAX);
        assert_eq!(row_agree_for(SimdLevel::Avx2)(&w, &p, 1, u64::MAX), want);
        let ok = [1u8; 8];
        let want = xnor_border_agree(&w, &p, &ok, 1, u64::MAX);
        assert_eq!(border_agree_for(SimdLevel::Avx2)(&w, &p, &ok, 1, u64::MAX), want);
    }
}
