//! Cost accounting with the paper's conventions (§V-E):
//!
//! ```text
//! OPs    = OPs_f    + OPs_b / 64
//! Params = Params_f + Params_b / 32
//! ```
//!
//! following Bi-Real Net and DoReFa-Net. Binary multiply-accumulates run 64
//! to a word on 64-bit hardware; binary weights cost 1 bit against a 32-bit
//! float.

use std::fmt;

/// Accumulated parameter and operation counts for a model, split into
/// full-precision and binary contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostReport {
    /// Full-precision parameter count.
    pub fp_params: u64,
    /// Binary (1-bit) parameter count.
    pub bin_params: u64,
    /// Full-precision multiply-accumulate operations.
    pub fp_ops: u64,
    /// Binary multiply-accumulate operations.
    pub bin_ops: u64,
}

impl CostReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Effective parameter count (`Params_f + Params_b/32`), in units of
    /// 32-bit parameters.
    #[must_use]
    pub fn effective_params(&self) -> f64 {
        self.fp_params as f64 + self.bin_params as f64 / 32.0
    }

    /// Effective operation count (`OPs_f + OPs_b/64`).
    #[must_use]
    pub fn effective_ops(&self) -> f64 {
        self.fp_ops as f64 + self.bin_ops as f64 / 64.0
    }

    /// Merge another report into this one.
    pub fn add(&mut self, other: CostReport) {
        self.fp_params += other.fp_params;
        self.bin_params += other.bin_params;
        self.fp_ops += other.fp_ops;
        self.bin_ops += other.bin_ops;
    }

    /// Effective params formatted in thousands ("34K") like the paper.
    #[must_use]
    pub fn params_display(&self) -> String {
        let p = self.effective_params();
        if p >= 1e6 {
            format!("{:.2}M", p / 1e6)
        } else {
            format!("{:.1}K", p / 1e3)
        }
    }

    /// Effective OPs formatted in G ("6.1G") like the paper.
    #[must_use]
    pub fn ops_display(&self) -> String {
        let o = self.effective_ops();
        if o >= 1e9 {
            format!("{:.2}G", o / 1e9)
        } else {
            format!("{:.1}M", o / 1e6)
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} params, {} OPs", self.params_display(), self.ops_display())
    }
}

/// Cost of a 2-D convolution layer at a given output resolution.
///
/// `binary` marks the multiply-accumulates (and weights) as 1-bit.
#[must_use]
pub fn conv2d_cost(
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    out_h: usize,
    out_w: usize,
    binary: bool,
    bias: bool,
) -> CostReport {
    let params = (out_channels * in_channels * kernel * kernel) as u64;
    let macs = params * (out_h * out_w) as u64;
    let bias_params = if bias { out_channels as u64 } else { 0 };
    let bias_ops = if bias { (out_channels * out_h * out_w) as u64 } else { 0 };
    if binary {
        CostReport {
            fp_params: bias_params,
            bin_params: params,
            fp_ops: bias_ops,
            bin_ops: macs,
        }
    } else {
        CostReport {
            fp_params: params + bias_params,
            bin_params: 0,
            fp_ops: macs + bias_ops,
            bin_ops: 0,
        }
    }
}

/// Cost of a linear layer applied over `tokens` positions.
#[must_use]
pub fn linear_cost(in_features: usize, out_features: usize, tokens: usize, binary: bool, bias: bool) -> CostReport {
    let params = (out_features * in_features) as u64;
    let macs = params * tokens as u64;
    let bias_params = if bias { out_features as u64 } else { 0 };
    let bias_ops = if bias { (out_features * tokens) as u64 } else { 0 };
    if binary {
        CostReport { fp_params: bias_params, bin_params: params, fp_ops: bias_ops, bin_ops: macs }
    } else {
        CostReport { fp_params: params + bias_params, bin_params: 0, fp_ops: macs + bias_ops, bin_ops: 0 }
    }
}

/// Cost of the SCALES spatial re-scaling branch (FP 1×1 conv to one channel
/// plus sigmoid and the broadcast multiply).
#[must_use]
pub fn spatial_rescale_cost(channels: usize, out_h: usize, out_w: usize) -> CostReport {
    let hw = (out_h * out_w) as u64;
    CostReport {
        fp_params: channels as u64,
        bin_params: 0,
        // 1×1 conv MACs + sigmoid + rescale multiply.
        fp_ops: channels as u64 * hw + 2 * hw,
        bin_ops: 0,
    }
}

/// Cost of the SCALES channel re-scaling branch (global average pool,
/// Conv1d(k), sigmoid, broadcast multiply). Only `k` FP parameters — the
/// paper's headline efficiency claim versus the `2C²/r` of SE-style blocks.
#[must_use]
pub fn channel_rescale_cost(channels: usize, kernel: usize, out_h: usize, out_w: usize) -> CostReport {
    let hw = (out_h * out_w) as u64;
    let c = channels as u64;
    CostReport {
        fp_params: kernel as u64,
        bin_params: 0,
        // GAP (C·HW adds) + conv1d (C·k MACs) + sigmoid (C) + multiply (C·HW).
        fp_ops: c * hw + c * kernel as u64 + c + c * hw,
        bin_ops: 0,
    }
}

/// Cost of the SE-style channel attention of Real-to-Binary networks
/// (GlobalAvgPool–Linear–ReLU–Linear–Sigmoid with reduction `r`), for the
/// parameter-overhead comparison in the paper's §IV-C.
#[must_use]
pub fn se_block_cost(channels: usize, reduction: usize, out_h: usize, out_w: usize) -> CostReport {
    let c = channels as u64;
    let mid = (channels / reduction.max(1)) as u64;
    let hw = (out_h * out_w) as u64;
    CostReport {
        fp_params: 2 * c * mid,
        bin_params: 0,
        fp_ops: c * hw + 2 * c * mid + c * hw,
        bin_ops: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_conv_is_64x_cheaper_in_ops() {
        let fp = conv2d_cost(64, 64, 3, 100, 100, false, false);
        let bin = conv2d_cost(64, 64, 3, 100, 100, true, false);
        assert_eq!(fp.effective_ops(), bin.effective_ops() * 64.0);
        assert_eq!(fp.effective_params(), bin.effective_params() * 32.0);
    }

    #[test]
    fn report_merges() {
        let mut r = CostReport::new();
        r.add(conv2d_cost(3, 8, 3, 10, 10, false, true));
        r.add(conv2d_cost(8, 8, 3, 10, 10, true, false));
        assert!(r.fp_params > 0 && r.bin_params > 0);
    }

    #[test]
    fn channel_rescale_params_are_just_kernel() {
        let c = channel_rescale_cost(256, 5, 32, 32);
        assert_eq!(c.fp_params, 5);
    }

    #[test]
    fn se_vs_conv1d_ratio_matches_paper() {
        // Paper §IV-C: ratio = 2C²/(r·k) = 1638 when r = 16, C = 256, k = 5.
        let se = se_block_cost(256, 16, 1, 1);
        let ours = channel_rescale_cost(256, 5, 1, 1);
        let ratio = se.fp_params as f64 / ours.fp_params as f64;
        assert!((ratio - 1638.4).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn display_units() {
        let r = CostReport { fp_params: 1_520_000, bin_params: 0, fp_ops: 913_800_000_000, bin_ops: 0 };
        assert_eq!(r.params_display(), "1.52M");
        assert_eq!(r.ops_display(), "913.80G");
    }
}
