//! Bit-packed XNOR-popcount inference kernels.
//!
//! These implement the deployment path the paper benchmarks with Larq on a
//! Snapdragon 870 (Table VI): weights are packed once at construction,
//! activations are sign-packed per call, and the convolution inner product
//! runs entirely on `u64` XNOR + popcount, recovering the float result
//! exactly for `±1` inputs (padded taps contribute 0 via the lane mask).

use crate::pack::PackedBits;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::{Result, Tensor, TensorError};

/// A binary 2-D convolution with packed weights and per-output-channel
/// float scales (`ŵ = s_c · sign(w)`).
///
/// Packing is **channel-major**: each spatial position's input-channel
/// vector is packed into `ceil(IC/64)` words once per image, so the hot
/// loop gathers whole words rather than individual bits. Weights are packed
/// in the matching `(ky, kx, channel-word)` order at construction.
pub struct BinaryConv2d {
    /// Per output channel: `k·k·wpp` words in (ky, kx, channel-word) order.
    packed_weights: Vec<u64>,
    scales: Vec<f32>,
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    /// Words per pixel (`ceil(IC/64)`).
    wpp: usize,
    /// Valid-channel mask for the (single partial) channel word.
    channel_mask: u64,
    spec: Conv2dSpec,
}

impl BinaryConv2d {
    /// Pack a float weight tensor `[OC, IC, k, k]`. Scales default to the
    /// per-channel mean absolute value (the XNOR-Net rule).
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 or non-square kernels.
    pub fn from_float_weight(weight: &Tensor) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: weight.rank(), op: "binary conv weight" });
        }
        let (oc, ic, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        if kh != kw {
            return Err(TensorError::InvalidArgument(format!("kernel must be square, got {kh}x{kw}")));
        }
        let k = kh;
        let wpp = ic.div_ceil(64);
        let channel_mask = if ic % 64 == 0 { u64::MAX } else { (1u64 << (ic % 64)) - 1 };
        let per = ic * k * k;
        let mut packed = vec![0u64; oc * k * k * wpp];
        let mut scales = Vec::with_capacity(oc);
        for c in 0..oc {
            let chunk = &weight.data()[c * per..(c + 1) * per];
            scales.push(chunk.iter().map(|v| v.abs()).sum::<f32>() / per as f32);
            for ky in 0..k {
                for kx in 0..k {
                    for ci in 0..ic {
                        // chunk layout: [ic, k, k]
                        if chunk[(ci * k + ky) * k + kx] >= 0.0 {
                            let word = ((c * k + ky) * k + kx) * wpp + ci / 64;
                            packed[word] |= 1 << (ci % 64);
                        }
                    }
                }
            }
        }
        Ok(Self {
            packed_weights: packed,
            scales,
            out_channels: oc,
            in_channels: ic,
            kernel: k,
            wpp,
            channel_mask,
            spec: Conv2dSpec::same(k),
        })
    }

    /// Override the convolution spec (default is stride-1 "same").
    #[must_use]
    pub fn with_spec(mut self, spec: Conv2dSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Override the per-channel scales (e.g. to fold in a learned α).
    ///
    /// # Errors
    ///
    /// Returns an error when the count differs from the output channels.
    pub fn set_scales(&mut self, scales: Vec<f32>) -> Result<()> {
        if scales.len() != self.out_channels {
            return Err(TensorError::LengthMismatch {
                expected: self.out_channels,
                actual: scales.len(),
            });
        }
        self.scales = scales;
        Ok(())
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Run the packed convolution on a float input `[N, IC, H, W]`. The
    /// input is sign-binarized internally; the output is
    /// `s_c · (binary dot)` per channel, with zero-padded taps contributing
    /// exactly 0 (mask words), bit-exact against the float reference.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched channel counts or geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "binary conv input" });
        }
        let (n, ic, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        if ic != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![self.out_channels, self.in_channels, self.kernel, self.kernel],
                op: "binary conv channels",
            });
        }
        let k = self.kernel;
        let oh = self.spec.out_extent(h, k)?;
        let ow = self.spec.out_extent(w, k)?;
        let oc = self.out_channels;
        let wpp = self.wpp;
        let kk = k * k;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        // Per-image channel-major activation bitmap: [h·w][wpp] words.
        let mut act = vec![0u64; h * w * wpp];
        // Gathered receptive field: kk·wpp words + per-tap validity count.
        let mut patch = vec![0u64; kk * wpp];
        let mut patch_mask = vec![0u64; kk * wpp];
        for b in 0..n {
            act.iter_mut().for_each(|v| *v = 0);
            for ci in 0..ic {
                let plane = &input.data()[(b * ic + ci) * h * w..(b * ic + ci + 1) * h * w];
                let (word, bit) = (ci / 64, 1u64 << (ci % 64));
                for (p, &v) in plane.iter().enumerate() {
                    if v >= 0.0 {
                        act[p * wpp + word] |= bit;
                    }
                }
            }
            for oy in 0..oh {
                for ox in 0..ow {
                    // Gather whole channel-words for each kernel tap.
                    let mut valid_total = 0i32;
                    for ky in 0..k {
                        let iy = (oy * self.spec.stride + ky) as isize - self.spec.padding as isize;
                        for kx in 0..k {
                            let ix = (ox * self.spec.stride + kx) as isize - self.spec.padding as isize;
                            let t = (ky * k + kx) * wpp;
                            if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                patch[t..t + wpp].iter_mut().for_each(|v| *v = 0);
                                patch_mask[t..t + wpp].iter_mut().for_each(|v| *v = 0);
                            } else {
                                let src = (iy as usize * w + ix as usize) * wpp;
                                patch[t..t + wpp].copy_from_slice(&act[src..src + wpp]);
                                for wi in 0..wpp {
                                    patch_mask[t + wi] =
                                        if wi + 1 == wpp { self.channel_mask } else { u64::MAX };
                                }
                                valid_total += ic as i32;
                            }
                        }
                    }
                    let base = ((b * oc) * oh + oy) * ow + ox;
                    for c in 0..oc {
                        let wrow = &self.packed_weights[c * kk * wpp..(c + 1) * kk * wpp];
                        let mut agree = 0u32;
                        for ((&wb, &ab), &m) in
                            wrow.iter().zip(patch.iter()).zip(patch_mask.iter())
                        {
                            agree += (!(wb ^ ab) & m).count_ones();
                        }
                        let dot = 2 * agree as i32 - valid_total;
                        out.data_mut()[base + c * oh * ow] = self.scales[c] * dot as f32;
                    }
                }
            }
        }
        Ok(out)
    }
}

/// A binary linear layer with packed weights and per-output scales.
pub struct BinaryLinear {
    packed_weights: Vec<PackedBits>,
    scales: Vec<f32>,
    in_features: usize,
}

impl BinaryLinear {
    /// Pack a float weight matrix `[out, in]` with XNOR-Net per-row scales.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix weights.
    pub fn from_float_weight(weight: &Tensor) -> Result<Self> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: weight.rank(), op: "binary linear weight" });
        }
        let (out, inf) = (weight.shape()[0], weight.shape()[1]);
        let mut packed = Vec::with_capacity(out);
        let mut scales = Vec::with_capacity(out);
        for r in 0..out {
            let row = &weight.data()[r * inf..(r + 1) * inf];
            packed.push(PackedBits::from_signs(row));
            scales.push(row.iter().map(|v| v.abs()).sum::<f32>() / inf as f32);
        }
        Ok(Self { packed_weights: packed, scales, in_features: inf })
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.packed_weights.len()
    }

    /// Apply to `[..., in] → [..., out]`, sign-binarizing the input.
    ///
    /// # Errors
    ///
    /// Returns an error when the trailing axis does not match.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let shape = input.shape().to_vec();
        let last = *shape.last().ok_or_else(|| {
            TensorError::InvalidArgument("binary linear needs rank >= 1".into())
        })?;
        if last != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: shape,
                rhs: vec![self.out_features(), self.in_features],
                op: "binary linear",
            });
        }
        let m = input.len() / last;
        let out_f = self.out_features();
        let mut out_shape = shape.clone();
        *out_shape.last_mut().expect("rank >= 1") = out_f;
        let mut out = Tensor::zeros(&out_shape);
        for r in 0..m {
            let row = PackedBits::from_signs(&input.data()[r * last..(r + 1) * last]);
            for (c, (pw, &s)) in self.packed_weights.iter().zip(self.scales.iter()).enumerate() {
                out.data_mut()[r * out_f + c] = s * pw.dot(&row) as f32;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::ops::conv2d;

    fn signs(n: usize, seed: u64) -> Vec<f32> {
        // Simple LCG for deterministic ±1 data without pulling in rand here.
        let mut s = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                if (s >> 33) & 1 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    #[test]
    fn binary_conv_matches_float_conv_on_sign_inputs() {
        let input = Tensor::from_vec(signs(2 * 3 * 8 * 8, 1), &[2, 3, 8, 8]).unwrap();
        let weight = Tensor::from_vec(signs(4 * 3 * 3 * 3, 2), &[4, 3, 3, 3]).unwrap();
        let mut bc = BinaryConv2d::from_float_weight(&weight).unwrap();
        bc.set_scales(vec![1.0; 4]).unwrap();
        let fast = bc.forward(&input).unwrap();
        let slow = conv2d(&input, &weight, Conv2dSpec::same(3)).unwrap();
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn binary_conv_scales_apply_per_channel() {
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[2, 1, 1, 1]);
        let mut bc = BinaryConv2d::from_float_weight(&weight).unwrap();
        bc.set_scales(vec![2.0, 0.5]).unwrap();
        let y = bc.forward(&input).unwrap();
        assert_eq!(y.at(&[0, 0, 1, 1]), 2.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), 0.5);
    }

    #[test]
    fn binary_linear_matches_float_matmul_on_sign_inputs() {
        let x = Tensor::from_vec(signs(4 * 16, 3), &[4, 16]).unwrap();
        let w = Tensor::from_vec(signs(8 * 16, 4), &[8, 16]).unwrap();
        let bl = BinaryLinear::from_float_weight(&w).unwrap();
        let y = bl.forward(&x).unwrap();
        assert_eq!(y.shape(), &[4, 8]);
        // Reference: x · (s ⊙ sign(w))ᵀ with s = mean|w| = 1 here (w is ±1).
        for r in 0..4 {
            for c in 0..8 {
                let dot: f32 = (0..16).map(|i| x.at(&[r, i]) * w.at(&[c, i])).sum();
                assert!((y.at(&[r, c]) - dot).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn weight_scale_is_mean_abs() {
        let w = Tensor::from_vec(vec![2.0, -4.0, 1.0, -1.0], &[1, 4]).unwrap();
        let bl = BinaryLinear::from_float_weight(&w).unwrap();
        let x = Tensor::ones(&[1, 4]);
        let y = bl.forward(&x).unwrap();
        // sign(w) = [1,-1,1,-1]; dot with ones = 0 → 0·2 = 0
        assert_eq!(y.data()[0], 0.0);
    }

    #[test]
    fn rejects_bad_geometry() {
        let w = Tensor::ones(&[2, 3, 3, 3]);
        let bc = BinaryConv2d::from_float_weight(&w).unwrap();
        assert!(bc.forward(&Tensor::ones(&[1, 2, 4, 4])).is_err());
        assert!(BinaryConv2d::from_float_weight(&Tensor::ones(&[2, 3])).is_err());
    }
}
