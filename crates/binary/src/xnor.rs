//! Bit-packed XNOR-popcount inference kernels.
//!
//! These implement the deployment path the paper benchmarks with Larq on a
//! Snapdragon 870 (Table VI): weights are packed once at construction,
//! activations are sign-packed per call, and the convolution inner product
//! runs entirely on `u64` XNOR + popcount, recovering the float result
//! exactly for `±1` inputs (padded taps contribute 0 via the lane mask).
//!
//! The convolution is organised as a bit-level im2col followed by a
//! "binary GEMM" over output channels, dispatched through
//! [`scales_tensor::backend`] so the parallel backend splits channel rows
//! across threads and the simd backend swaps in the hardware-popcount /
//! AVX2 agree loops from [`crate::count`] (results are identical on every
//! backend — the inner product is integer-exact).

use crate::pack::PackedBits;
use scales_tensor::ops::Conv2dSpec;
use scales_tensor::workspace::BitScratch;
use scales_tensor::{Result, Tensor, TensorError};

/// A binary 2-D convolution with packed weights and per-output-channel
/// float scales (`ŵ = s_c · sign(w)`).
///
/// Packing is **channel-major**: each spatial position's input-channel
/// vector is packed into `ceil(IC/64)` words once per image, so the hot
/// loop gathers whole words rather than individual bits. Weights are packed
/// in the matching `(ky, kx, channel-word)` order at construction.
pub struct BinaryConv2d {
    /// Per output channel: `k·k·wpp` words in (ky, kx, channel-word) order.
    packed_weights: Vec<u64>,
    scales: Vec<f32>,
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    /// Words per pixel (`ceil(IC/64)`).
    wpp: usize,
    /// Valid-channel mask for the (single partial) channel word.
    channel_mask: u64,
    spec: Conv2dSpec,
}

/// Packing geometry shared by every constructor: words per pixel and the
/// valid-lane mask for the (single partial) channel word. One home for
/// the load-bearing formula so the float-weight and serialized-parts
/// paths can never drift apart.
fn packing_geometry(in_channels: usize) -> (usize, u64) {
    let wpp = in_channels.div_ceil(64);
    let mask = if in_channels.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (in_channels % 64)) - 1
    };
    (wpp, mask)
}

impl BinaryConv2d {
    /// Pack a float weight tensor `[OC, IC, k, k]`. Scales default to the
    /// per-channel mean absolute value (the XNOR-Net rule).
    ///
    /// # Errors
    ///
    /// Returns an error for non-rank-4 or non-square kernels.
    pub fn from_float_weight(weight: &Tensor) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: weight.rank(), op: "binary conv weight" });
        }
        let (oc, ic, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        if kh != kw {
            return Err(TensorError::InvalidArgument(format!("kernel must be square, got {kh}x{kw}")));
        }
        let k = kh;
        let (wpp, channel_mask) = packing_geometry(ic);
        let per = ic * k * k;
        let mut packed = vec![0u64; oc * k * k * wpp];
        let mut scales = Vec::with_capacity(oc);
        for c in 0..oc {
            let chunk = &weight.data()[c * per..(c + 1) * per];
            scales.push(chunk.iter().map(|v| v.abs()).sum::<f32>() / per as f32);
            for ky in 0..k {
                for kx in 0..k {
                    for ci in 0..ic {
                        // chunk layout: [ic, k, k]
                        if chunk[(ci * k + ky) * k + kx] >= 0.0 {
                            let word = ((c * k + ky) * k + kx) * wpp + ci / 64;
                            packed[word] |= 1 << (ci % 64);
                        }
                    }
                }
            }
        }
        Ok(Self {
            packed_weights: packed,
            scales,
            out_channels: oc,
            in_channels: ic,
            kernel: k,
            wpp,
            channel_mask,
            spec: Conv2dSpec::same(k),
        })
    }

    /// Override the convolution spec (default is stride-1 "same").
    #[must_use]
    pub fn with_spec(mut self, spec: Conv2dSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Rebuild a packed convolution from its raw serialized parts: the
    /// packed weight words in the layout produced by
    /// [`BinaryConv2d::packed_weights`] ((oc, ky, kx, channel-word) order,
    /// `ceil(ic/64)` words per pixel), the per-channel scales, the layer
    /// geometry, and the spec. The inverse of reading
    /// [`BinaryConv2d::packed_weights`] / [`BinaryConv2d::scales`]; the
    /// rebuilt layer is bit-identical in forward.
    ///
    /// # Errors
    ///
    /// Returns an error for zero extents or word/scale counts that do not
    /// match the geometry.
    pub fn from_packed_parts(
        out_channels: usize,
        in_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
        packed_weights: Vec<u64>,
        scales: Vec<f32>,
    ) -> Result<Self> {
        if out_channels == 0 || in_channels == 0 || kernel == 0 {
            return Err(TensorError::InvalidArgument(
                "binary conv needs positive channel counts and kernel size".into(),
            ));
        }
        let (wpp, channel_mask) = packing_geometry(in_channels);
        // Checked: the extents may come from an untrusted serialized
        // artifact, and an overflow must be a typed error, not a panic
        // (debug) or a wrapped garbage comparison (release).
        let expected = out_channels
            .checked_mul(kernel)
            .and_then(|v| v.checked_mul(kernel))
            .and_then(|v| v.checked_mul(wpp))
            .ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "binary conv extents overflow ({out_channels} out, {in_channels} in, kernel {kernel})"
                ))
            })?;
        if packed_weights.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: packed_weights.len(),
            });
        }
        if scales.len() != out_channels {
            return Err(TensorError::LengthMismatch {
                expected: out_channels,
                actual: scales.len(),
            });
        }
        Ok(Self {
            packed_weights,
            scales,
            out_channels,
            in_channels,
            kernel,
            wpp,
            channel_mask,
            spec,
        })
    }

    /// The packed weight words: `kernel² · ceil(in_channels/64)` words per
    /// output channel in (ky, kx, channel-word) order.
    #[must_use]
    pub fn packed_weights(&self) -> &[u64] {
        &self.packed_weights
    }

    /// The per-output-channel float scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Square kernel extent.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// The convolution spec (stride and padding).
    #[must_use]
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// Override the per-channel scales (e.g. to fold in a learned α).
    ///
    /// # Errors
    ///
    /// Returns an error when the count differs from the output channels.
    pub fn set_scales(&mut self, scales: Vec<f32>) -> Result<()> {
        if scales.len() != self.out_channels {
            return Err(TensorError::LengthMismatch {
                expected: self.out_channels,
                actual: scales.len(),
            });
        }
        self.scales = scales;
        Ok(())
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Run the packed convolution on a float input `[N, IC, H, W]`. The
    /// input is sign-binarized internally; the output is
    /// `s_c · (binary dot)` per channel, with zero-padded taps contributing
    /// exactly 0 (mask words), bit-exact against the float reference.
    ///
    /// Allocating convenience wrapper over [`BinaryConv2d::forward_into`];
    /// serving paths thread a reusable [`BitScratch`] instead.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched channel counts or geometry.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: input.rank(), op: "binary conv input" });
        }
        let (n, ic, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        if ic != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![self.out_channels, self.in_channels, self.kernel, self.kernel],
                op: "binary conv channels",
            });
        }
        let oh = self.spec.out_extent(h, self.kernel)?;
        let ow = self.spec.out_extent(w, self.kernel)?;
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let mut scratch = BitScratch::default();
        self.forward_into(input.data(), n, h, w, &mut scratch, out.data_mut())?;
        Ok(out)
    }

    /// The zero-allocation core of [`BinaryConv2d::forward`]: convolve a
    /// flat `[n, in_channels, h, w]` input into a caller-provided output
    /// buffer of `n · out_channels · oh · ow` elements (fully
    /// overwritten), staging the activation bitmap and bit-im2col patches
    /// in a reusable grow-only [`BitScratch`].
    ///
    /// Two structural fast paths keep results integer-exact while skipping
    /// border bookkeeping:
    ///
    /// * the sign packing writes **both polarities** of each word's first
    ///   channel lane (assignment, then ORs), so the bitmap never needs a
    ///   zeroing pass;
    /// * output pixels whose receptive field is entirely in bounds (the
    ///   *interior* rectangle — the overwhelming majority at serving
    ///   sizes) run a branch-free inner product with no per-tap `tap_ok`
    ///   lookups and a constant valid-channel count; only border pixels
    ///   keep the masked path. Both paths count the same lanes, so the
    ///   result is bit-identical to the all-masked reference.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched input/output lengths or geometry.
    pub fn forward_into(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        scratch: &mut BitScratch,
        out: &mut [f32],
    ) -> Result<()> {
        let ic = self.in_channels;
        let oc = self.out_channels;
        let k = self.kernel;
        let oh = self.spec.out_extent(h, k)?;
        let ow = self.spec.out_extent(w, k)?;
        if input.len() != n * ic * h * w {
            return Err(TensorError::LengthMismatch { expected: n * ic * h * w, actual: input.len() });
        }
        if out.len() != n * oc * oh * ow {
            return Err(TensorError::LengthMismatch { expected: n * oc * oh * ow, actual: out.len() });
        }
        let wpp = self.wpp;
        let kk = k * k;
        let (stride, pad) = (self.spec.stride, self.spec.padding);
        // Resolve the backend kernel and its popcount implementations once
        // per forward: the agree loops come from `count`, picked by the
        // kernel's advertised SIMD level (scalar/parallel report None and
        // get the portable loops; simd reports what the CPU offers).
        let kern = scales_tensor::backend::kernel();
        let row_agree = crate::count::row_agree_for(kern.simd_level());
        let border_agree = crate::count::border_agree_for(kern.simd_level());
        // Interior rectangle: output coordinates whose taps are all in
        // bounds on both axes (half-open ranges; empty when the kernel
        // over-covers the image).
        let (y_lo, y_hi) = interior_span(h, k, stride, pad, oh);
        let (x_lo, x_hi) = interior_span(w, k, stride, pad, ow);
        let act = scales_tensor::workspace::sized(&mut scratch.act, h * w * wpp);
        let patches = scales_tensor::workspace::sized(&mut scratch.patches, oh * ow * kk * wpp);
        let tap_ok = scales_tensor::workspace::sized(&mut scratch.tap_ok, oh * ow * kk);
        let valid = scales_tensor::workspace::sized(&mut scratch.valid, oh * ow);
        for b in 0..n {
            // Channel-major sign packing, [h·w][wpp] words. The first
            // channel of each word *assigns* its lane (both polarities),
            // later channels OR theirs in — every word is written exactly
            // once without a zeroing pass, and stale scratch content never
            // leaks through.
            for ci in 0..ic {
                let plane = &input[(b * ic + ci) * h * w..(b * ic + ci + 1) * h * w];
                let (word, lane) = (ci / 64, ci % 64);
                let bit = 1u64 << lane;
                if lane == 0 {
                    for (p, &v) in plane.iter().enumerate() {
                        act[p * wpp + word] = u64::from(v >= 0.0);
                    }
                } else {
                    for (p, &v) in plane.iter().enumerate() {
                        if v >= 0.0 {
                            act[p * wpp + word] |= bit;
                        }
                    }
                }
            }
            // Bit-im2col. Interior pixels gather each kernel row as one
            // contiguous copy (the kx taps are adjacent bitmap pixels) and
            // skip the tap bookkeeping entirely; border pixels keep the
            // masked gather. `tap_ok`/`valid` stay stale on interior
            // pixels — the GEMM below never reads them there.
            for oy in 0..oh {
                let interior_row = oy >= y_lo && oy < y_hi;
                for ox in 0..ow {
                    let p = oy * ow + ox;
                    let row = p * kk * wpp;
                    if interior_row && ox >= x_lo && ox < x_hi {
                        let iy0 = oy * stride - pad;
                        let ix0 = ox * stride - pad;
                        for ky in 0..k {
                            let src = ((iy0 + ky) * w + ix0) * wpp;
                            patches[row + ky * k * wpp..row + (ky + 1) * k * wpp]
                                .copy_from_slice(&act[src..src + k * wpp]);
                        }
                        continue;
                    }
                    let mut valid_total = 0i32;
                    for ky in 0..k {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        for kx in 0..k {
                            let tap = ky * k + kx;
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            let t = row + tap * wpp;
                            if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                patches[t..t + wpp].iter_mut().for_each(|v| *v = 0);
                                tap_ok[p * kk + tap] = 0;
                            } else {
                                let src = (iy as usize * w + ix as usize) * wpp;
                                patches[t..t + wpp].copy_from_slice(&act[src..src + wpp]);
                                tap_ok[p * kk + tap] = 1;
                                valid_total += ic as i32;
                            }
                        }
                    }
                    valid[p] = valid_total;
                }
            }
            // Binary GEMM over [oc × (oh·ow)]: each output channel owns a
            // contiguous plane, so the backend can dispatch channel rows to
            // worker threads with no synchronisation. The partial channel
            // word is masked by `channel_mask` (u64::MAX when IC is a
            // multiple of 64).
            let out_image = &mut out[b * oc * oh * ow..(b + 1) * oc * oh * ow];
            let (patches, tap_ok, valid) = (&*patches, &*tap_ok, &*valid);
            let weights = &self.packed_weights;
            let scales = &self.scales;
            let channel_mask = self.channel_mask;
            let interior_valid = (kk * ic) as i32;
            // ~1 popcount word-op per packed word, per pixel.
            let work = oh * ow * kk * wpp;
            kern.for_each_row_chunk(
                out_image,
                oh * ow,
                work,
                &|first, chunk| {
                    for (j, plane) in chunk.chunks_mut(oh * ow).enumerate() {
                        let c = first + j;
                        let wrow = &weights[c * kk * wpp..(c + 1) * kk * wpp];
                        let scale = scales[c];
                        // Branch-free interior inner product: every tap is
                        // in bounds, so no tap_ok lookups and the valid
                        // count is the constant kk·ic. The agree loop is
                        // the shared `count::xnor_row_agree` (or its
                        // hardware-popcount/AVX2 twin, per `row_agree`).
                        let interior = |p: usize| -> f32 {
                            let prow = &patches[p * kk * wpp..(p + 1) * kk * wpp];
                            let agree = row_agree(wrow, prow, wpp, channel_mask);
                            scale * (2 * agree as i32 - interior_valid) as f32
                        };
                        // Masked border inner product (out-of-bounds taps
                        // skipped outright via tap_ok).
                        let border = |p: usize| -> f32 {
                            let prow = &patches[p * kk * wpp..(p + 1) * kk * wpp];
                            let ok = &tap_ok[p * kk..(p + 1) * kk];
                            let agree = border_agree(wrow, prow, ok, wpp, channel_mask);
                            scale * (2 * agree as i32 - valid[p]) as f32
                        };
                        for oy in 0..oh {
                            let row = oy * ow;
                            let (ix0, ix1) =
                                if oy >= y_lo && oy < y_hi { (x_lo, x_hi) } else { (ow, ow) };
                            for ox in 0..ix0.min(ow) {
                                plane[row + ox] = border(row + ox);
                            }
                            for ox in ix0..ix1 {
                                plane[row + ox] = interior(row + ox);
                            }
                            for ox in ix1..ow {
                                plane[row + ox] = border(row + ox);
                            }
                        }
                    }
                },
            );
        }
        Ok(())
    }
}

/// Half-open output-coordinate span whose receptive field is entirely in
/// bounds along one axis: `o·stride ≥ pad` and `o·stride + k − 1 − pad ≤
/// extent − 1`. Returns an empty span when no such coordinate exists.
fn interior_span(extent: usize, k: usize, stride: usize, pad: usize, out_extent: usize) -> (usize, usize) {
    let lo = pad.div_ceil(stride);
    match (extent + pad).checked_sub(k).map(|v| v / stride) {
        Some(hi) if lo <= hi => (lo.min(out_extent), (hi + 1).min(out_extent)),
        _ => (0, 0),
    }
}

/// A binary linear layer with packed weights and per-output scales.
pub struct BinaryLinear {
    packed_weights: Vec<PackedBits>,
    scales: Vec<f32>,
    in_features: usize,
}

impl BinaryLinear {
    /// Pack a float weight matrix `[out, in]` with XNOR-Net per-row scales.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix weights.
    pub fn from_float_weight(weight: &Tensor) -> Result<Self> {
        if weight.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: weight.rank(), op: "binary linear weight" });
        }
        let (out, inf) = (weight.shape()[0], weight.shape()[1]);
        let mut packed = Vec::with_capacity(out);
        let mut scales = Vec::with_capacity(out);
        for r in 0..out {
            let row = &weight.data()[r * inf..(r + 1) * inf];
            packed.push(PackedBits::from_signs(row));
            scales.push(row.iter().map(|v| v.abs()).sum::<f32>() / inf as f32);
        }
        Ok(Self { packed_weights: packed, scales, in_features: inf })
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.packed_weights.len()
    }

    /// Apply to `[..., in] → [..., out]`, sign-binarizing the input.
    ///
    /// # Errors
    ///
    /// Returns an error when the trailing axis does not match.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let shape = input.shape().to_vec();
        let last = *shape.last().ok_or_else(|| {
            TensorError::InvalidArgument("binary linear needs rank >= 1".into())
        })?;
        if last != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: shape,
                rhs: vec![self.out_features(), self.in_features],
                op: "binary linear",
            });
        }
        let m = input.len() / last;
        let out_f = self.out_features();
        let mut out_shape = shape.clone();
        *out_shape.last_mut().expect("rank >= 1") = out_f;
        let mut out = Tensor::zeros(&out_shape);
        for r in 0..m {
            let row = PackedBits::from_signs(&input.data()[r * last..(r + 1) * last]);
            for (c, (pw, &s)) in self.packed_weights.iter().zip(self.scales.iter()).enumerate() {
                out.data_mut()[r * out_f + c] = s * pw.dot(&row) as f32;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_tensor::ops::conv2d;

    fn signs(n: usize, seed: u64) -> Vec<f32> {
        // Simple LCG for deterministic ±1 data without pulling in rand here.
        let mut s = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                if (s >> 33) & 1 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    #[test]
    fn binary_conv_matches_float_conv_on_sign_inputs() {
        let input = Tensor::from_vec(signs(2 * 3 * 8 * 8, 1), &[2, 3, 8, 8]).unwrap();
        let weight = Tensor::from_vec(signs(4 * 3 * 3 * 3, 2), &[4, 3, 3, 3]).unwrap();
        let mut bc = BinaryConv2d::from_float_weight(&weight).unwrap();
        bc.set_scales(vec![1.0; 4]).unwrap();
        let fast = bc.forward(&input).unwrap();
        let slow = conv2d(&input, &weight, Conv2dSpec::same(3)).unwrap();
        assert_eq!(fast.shape(), slow.shape());
        for (a, b) in fast.data().iter().zip(slow.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn binary_conv_matches_float_conv_across_specs_and_word_counts() {
        // Exercises the interior/border split on stride/padding variants
        // (including all-border and all-interior extremes) and the
        // multi-word channel path (IC > 64).
        for &(ic, k, stride, padding) in &[
            (3usize, 3usize, 1usize, 1usize),
            (3, 3, 2, 1),
            (3, 3, 1, 0), // no padding: every pixel interior
            (3, 5, 1, 2),
            (5, 3, 1, 2), // over-padded: interior shrinks
            (80, 3, 1, 1), // two channel words with a partial mask
            (64, 3, 1, 1), // exactly one full word
        ] {
            let spec = Conv2dSpec { stride, padding };
            let input = Tensor::from_vec(signs(2 * ic * 9 * 8, 21), &[2, ic, 9, 8]).unwrap();
            let weight = Tensor::from_vec(signs(4 * ic * k * k, 22), &[4, ic, k, k]).unwrap();
            let mut bc = BinaryConv2d::from_float_weight(&weight).unwrap().with_spec(spec);
            bc.set_scales(vec![1.0; 4]).unwrap();
            let fast = bc.forward(&input).unwrap();
            let slow = conv2d(&input, &weight, spec).unwrap();
            assert_eq!(fast.shape(), slow.shape());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "ic={ic} k={k} spec={spec:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_into_reusing_stale_scratch_is_bit_identical() {
        use scales_tensor::workspace::BitScratch;
        let weight = Tensor::from_vec(signs(4 * 3 * 3 * 3, 31), &[4, 3, 3, 3]).unwrap();
        let bc = BinaryConv2d::from_float_weight(&weight).unwrap();
        let mut scratch = BitScratch::default();
        // Warm the scratch on a *larger* image so every buffer carries
        // stale data when the smaller forward reuses it.
        let big = Tensor::from_vec(signs(3 * 12 * 12, 32), &[1, 3, 12, 12]).unwrap();
        let mut big_out = vec![0.0; 4 * 12 * 12];
        bc.forward_into(big.data(), 1, 12, 12, &mut scratch, &mut big_out).unwrap();
        let small = Tensor::from_vec(signs(2 * 3 * 7 * 6, 33), &[2, 3, 7, 6]).unwrap();
        let want = bc.forward(&small).unwrap();
        let mut got = vec![f32::NAN; want.len()];
        bc.forward_into(small.data(), 2, 7, 6, &mut scratch, &mut got).unwrap();
        for (a, b) in want.data().iter().zip(got.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Length mismatches are typed errors.
        assert!(bc.forward_into(small.data(), 2, 7, 6, &mut scratch, &mut [0.0; 3]).is_err());
        assert!(bc.forward_into(&[0.0; 5], 1, 7, 6, &mut scratch, &mut got).is_err());
    }

    #[test]
    fn simd_backend_forward_is_bit_identical_to_scalar() {
        use scales_tensor::backend::{with_backend, Backend};
        // Sweep the spec/word-count variants that exercise both agree
        // paths (interior fast path, masked borders) and wpp 1 and 2;
        // non-unit scales make any miscount visible in the float output.
        for &(ic, k, stride, padding) in &[
            (3usize, 3usize, 1usize, 1usize),
            (3, 5, 1, 2),
            (64, 3, 1, 1),
            (80, 3, 1, 1), // two channel words with a partial mask
        ] {
            let spec = Conv2dSpec { stride, padding };
            let input = Tensor::from_vec(signs(2 * ic * 9 * 8, 61), &[2, ic, 9, 8]).unwrap();
            let weight = Tensor::from_vec(signs(4 * ic * k * k, 62), &[4, ic, k, k]).unwrap();
            let mut bc = BinaryConv2d::from_float_weight(&weight).unwrap().with_spec(spec);
            bc.set_scales(vec![0.5, 1.25, 2.0, 0.75]).unwrap();
            let scalar = with_backend(Backend::Scalar, || bc.forward(&input).unwrap());
            let simd = with_backend(Backend::Simd, || bc.forward(&input).unwrap());
            assert_eq!(scalar.shape(), simd.shape());
            for (a, b) in scalar.data().iter().zip(simd.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "ic={ic} k={k} spec={spec:?}");
            }
        }
    }

    #[test]
    fn binary_conv_scales_apply_per_channel() {
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let weight = Tensor::ones(&[2, 1, 1, 1]);
        let mut bc = BinaryConv2d::from_float_weight(&weight).unwrap();
        bc.set_scales(vec![2.0, 0.5]).unwrap();
        let y = bc.forward(&input).unwrap();
        assert_eq!(y.at(&[0, 0, 1, 1]), 2.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), 0.5);
    }

    #[test]
    fn binary_linear_matches_float_matmul_on_sign_inputs() {
        let x = Tensor::from_vec(signs(4 * 16, 3), &[4, 16]).unwrap();
        let w = Tensor::from_vec(signs(8 * 16, 4), &[8, 16]).unwrap();
        let bl = BinaryLinear::from_float_weight(&w).unwrap();
        let y = bl.forward(&x).unwrap();
        assert_eq!(y.shape(), &[4, 8]);
        // Reference: x · (s ⊙ sign(w))ᵀ with s = mean|w| = 1 here (w is ±1).
        for r in 0..4 {
            for c in 0..8 {
                let dot: f32 = (0..16).map(|i| x.at(&[r, i]) * w.at(&[c, i])).sum();
                assert!((y.at(&[r, c]) - dot).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn weight_scale_is_mean_abs() {
        let w = Tensor::from_vec(vec![2.0, -4.0, 1.0, -1.0], &[1, 4]).unwrap();
        let bl = BinaryLinear::from_float_weight(&w).unwrap();
        let x = Tensor::ones(&[1, 4]);
        let y = bl.forward(&x).unwrap();
        // sign(w) = [1,-1,1,-1]; dot with ones = 0 → 0·2 = 0
        assert_eq!(y.data()[0], 0.0);
    }

    #[test]
    fn packed_parts_round_trip_is_bit_identical() {
        let input = Tensor::from_vec(signs(5 * 7 * 7, 5), &[1, 5, 7, 7]).unwrap();
        let weight = Tensor::from_vec(
            signs(4 * 5 * 3 * 3, 6).iter().map(|v| v * 0.7).collect(),
            &[4, 5, 3, 3],
        )
        .unwrap();
        let bc = BinaryConv2d::from_float_weight(&weight).unwrap();
        let rebuilt = BinaryConv2d::from_packed_parts(
            bc.out_channels(),
            bc.in_channels(),
            bc.kernel(),
            bc.spec(),
            bc.packed_weights().to_vec(),
            bc.scales().to_vec(),
        )
        .unwrap();
        let a = bc.forward(&input).unwrap();
        let b = rebuilt.forward(&input).unwrap();
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn packed_parts_reject_mismatched_lengths() {
        let spec = Conv2dSpec::same(3);
        // 2 out, 3 in, 3x3: 2·9·1 = 18 words, 2 scales.
        assert!(BinaryConv2d::from_packed_parts(2, 3, 3, spec, vec![0; 17], vec![1.0; 2]).is_err());
        assert!(BinaryConv2d::from_packed_parts(2, 3, 3, spec, vec![0; 18], vec![1.0; 3]).is_err());
        assert!(BinaryConv2d::from_packed_parts(0, 3, 3, spec, vec![], vec![]).is_err());
        assert!(BinaryConv2d::from_packed_parts(2, 3, 3, spec, vec![0; 18], vec![1.0; 2]).is_ok());
    }

    #[test]
    fn rejects_bad_geometry() {
        let w = Tensor::ones(&[2, 3, 3, 3]);
        let bc = BinaryConv2d::from_float_weight(&w).unwrap();
        assert!(bc.forward(&Tensor::ones(&[1, 2, 4, 4])).is_err());
        assert!(BinaryConv2d::from_float_weight(&Tensor::ones(&[2, 3])).is_err());
    }
}
