//! [`HttpConfig`] — sizing and hardening knobs for the HTTP front end.

use crate::error::HttpError;
use std::time::Duration;

/// Configuration for [`HttpServer`](crate::HttpServer).
///
/// Every limit exists to bound what an untrusted peer can make the server
/// buffer or wait for: request lines and headers are length- and
/// count-limited, bodies are size-limited before allocation, reads time
/// out, and the runtime round trip is bounded by
/// [`request_timeout`](HttpConfig::request_timeout) (a slow model answer
/// becomes a `503`, not a connection held forever).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// Connection-worker threads draining the accept queue. Each worker
    /// serves one connection at a time (requests on a keep-alive
    /// connection are served in order). Default: 4.
    pub workers: usize,
    /// Accepted connections waiting for a worker. When the backlog is
    /// full, new connections are refused with an immediate `503` instead
    /// of queueing without bound. Default: 128.
    pub max_pending: usize,
    /// Maximum request body size in bytes, enforced against
    /// `Content-Length` *before* any allocation. Default: 16 MiB
    /// (comfortably above the codec pixel cap).
    pub max_body: usize,
    /// Maximum length of the request line and of each header line,
    /// including the terminator. Default: 8192.
    pub max_line: usize,
    /// Maximum number of request headers. Default: 64.
    pub max_headers: usize,
    /// How long a connection may sit idle between keep-alive requests,
    /// and the per-read timeout while a request is arriving. Default: 5 s.
    pub read_timeout: Duration,
    /// Bound on the full runtime round trip (queue admission + inference)
    /// per request, passed to
    /// [`Runtime::submit_wait_timeout`](scales_runtime::Runtime::submit_wait_timeout).
    /// Expiry maps to `503 Service Unavailable` with a `Retry-After`
    /// (distinct from a request's *own* `X-Scales-Deadline-Ms` deadline,
    /// whose expiry is a `504 Gateway Timeout`). Default: 30 s.
    pub request_timeout: Duration,
    /// Completed request traces retained by the flight recorder (the
    /// `GET /v1/debug/traces` ring). Default: 256.
    pub trace_capacity: usize,
    /// End-to-end latency above which a trace is *also* retained in the
    /// slow ring (`GET /v1/debug/traces?slow=1`), so a burst of fast
    /// traffic cannot flush the outliers a postmortem needs.
    /// Default: 250 ms.
    pub slow_threshold: Duration,
    /// Slow traces retained. Default: 64.
    pub slow_trace_capacity: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_pending: 128,
            max_body: 16 << 20,
            max_line: 8192,
            max_headers: 64,
            read_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            trace_capacity: 256,
            slow_threshold: Duration::from_millis(250),
            slow_trace_capacity: 64,
        }
    }
}

impl HttpConfig {
    /// Check the sizing is servable.
    ///
    /// # Errors
    ///
    /// [`HttpError::InvalidConfig`] when a worker/limit knob is zero or a
    /// timeout is zero.
    pub fn validate(&self) -> Result<(), HttpError> {
        let reject = |what: &str| Err(HttpError::InvalidConfig { what: what.into() });
        if self.workers == 0 {
            return reject("http server needs at least one connection worker");
        }
        if self.max_pending == 0 {
            return reject("pending-connection backlog must be positive");
        }
        if self.max_body == 0 {
            return reject("maximum body size must be positive");
        }
        if self.max_line < 16 {
            return reject("maximum line length must be at least 16 bytes");
        }
        if self.max_headers == 0 {
            return reject("maximum header count must be positive");
        }
        if self.read_timeout.is_zero() {
            return reject("read timeout must be positive");
        }
        if self.request_timeout.is_zero() {
            return reject("request timeout must be positive");
        }
        if self.trace_capacity == 0 {
            return reject("flight-recorder trace capacity must be positive");
        }
        if self.slow_threshold.is_zero() {
            return reject("slow-trace threshold must be positive");
        }
        if self.slow_trace_capacity == 0 {
            return reject("slow-trace capacity must be positive");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(HttpConfig::default().validate().is_ok());
    }

    #[test]
    fn every_zero_knob_is_rejected() {
        let ok = HttpConfig::default();
        let cases = [
            HttpConfig { workers: 0, ..ok },
            HttpConfig { max_pending: 0, ..ok },
            HttpConfig { max_body: 0, ..ok },
            HttpConfig { max_line: 15, ..ok },
            HttpConfig { max_headers: 0, ..ok },
            HttpConfig { read_timeout: Duration::ZERO, ..ok },
            HttpConfig { request_timeout: Duration::ZERO, ..ok },
            HttpConfig { trace_capacity: 0, ..ok },
            HttpConfig { slow_threshold: Duration::ZERO, ..ok },
            HttpConfig { slow_trace_capacity: 0, ..ok },
        ];
        for bad in cases {
            let err = bad.validate().expect_err("zero knob must be rejected");
            assert!(matches!(err, HttpError::InvalidConfig { .. }), "{err}");
        }
    }
}
