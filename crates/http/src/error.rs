//! Typed errors for the HTTP front end: [`HttpError`] for server
//! lifecycle failures and [`RequestError`] for everything a single
//! malformed or oversized request can do — each request-level variant
//! maps to a definite HTTP status via [`RequestError::status`], so a
//! hostile peer always gets a typed 4xx/5xx and never a panic or a hung
//! connection.

use scales_data::CodecError;

/// A server-lifecycle failure: the listener could not be set up or the
/// configuration is unservable. Per-request problems are the separate
/// [`RequestError`].
#[derive(Debug)]
pub enum HttpError {
    /// A socket operation failed while standing up the server.
    Io {
        /// What the server was doing (`"bind"`, `"local_addr"`, ...).
        context: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// [`HttpConfig::validate`](crate::HttpConfig::validate) rejected the
    /// sizing.
    InvalidConfig {
        /// Which knob is unservable.
        what: String,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io { context, source } => {
                write!(f, "http server {context} failed: {source}")
            }
            HttpError::InvalidConfig { what } => {
                write!(f, "invalid http config: {what}")
            }
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Io { source, .. } => Some(source),
            HttpError::InvalidConfig { .. } => None,
        }
    }
}

/// Why one request could not be served. Every variant has a definite
/// status code ([`RequestError::status`]); the connection worker renders
/// the `Display` text as the error response body.
#[derive(Debug)]
pub enum RequestError {
    /// The request line or a header line exceeded
    /// [`max_line`](crate::HttpConfig::max_line) → `431`.
    LineTooLong {
        /// The configured limit.
        limit: usize,
    },
    /// More than [`max_headers`](crate::HttpConfig::max_headers) headers
    /// → `431`.
    TooManyHeaders {
        /// The configured limit.
        limit: usize,
    },
    /// The request line is not `METHOD SP TARGET SP VERSION` → `400`.
    BadRequestLine {
        /// What was malformed.
        what: &'static str,
    },
    /// A header line is not `name: value` with a token name → `400`.
    BadHeader {
        /// What was malformed.
        what: &'static str,
    },
    /// Not HTTP/1.1 or HTTP/1.0 → `505`.
    UnsupportedVersion {
        /// The version string the peer sent.
        found: String,
    },
    /// `Transfer-Encoding` framing (chunked et al.) is not implemented;
    /// bodies must be `Content-Length`-framed → `501`.
    UnsupportedTransferEncoding,
    /// A route that consumes a body got a request without
    /// `Content-Length` → `411`.
    LengthRequired,
    /// `Content-Length` is not a plain decimal integer (or conflicting
    /// values were sent) → `400`.
    BadContentLength {
        /// What was malformed.
        what: &'static str,
    },
    /// `Content-Length` exceeds [`max_body`](crate::HttpConfig::max_body)
    /// → `413`. Enforced before any allocation.
    BodyTooLarge {
        /// The declared length.
        length: u64,
        /// The configured limit.
        limit: usize,
    },
    /// The peer closed the connection mid-request → `400` (usually
    /// nobody is left to read it; the worker closes the connection).
    UnexpectedEof,
    /// The peer stalled past
    /// [`read_timeout`](crate::HttpConfig::read_timeout) mid-request →
    /// `408`.
    Timeout,
    /// A socket read/write failed mid-request → the connection is
    /// closed; nominal status `400`.
    Io(std::io::Error),
    /// The request body is not a decodable image → `415` when the format
    /// itself is unrecognized, `400` for a malformed body in a recognized
    /// format.
    Codec(CodecError),
}

impl RequestError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            RequestError::LineTooLong { .. } | RequestError::TooManyHeaders { .. } => 431,
            RequestError::BadRequestLine { .. }
            | RequestError::BadHeader { .. }
            | RequestError::BadContentLength { .. }
            | RequestError::UnexpectedEof
            | RequestError::Io(_) => 400,
            RequestError::UnsupportedVersion { .. } => 505,
            RequestError::UnsupportedTransferEncoding => 501,
            RequestError::LengthRequired => 411,
            RequestError::BodyTooLarge { .. } => 413,
            RequestError::Timeout => 408,
            RequestError::Codec(
                CodecError::UnknownFormat { .. } | CodecError::BadMagic { .. },
            ) => 415,
            RequestError::Codec(_) => 400,
        }
    }

    /// The canonical reason phrase for [`RequestError::status`].
    #[must_use]
    pub fn reason(&self) -> &'static str {
        crate::server::reason_phrase(self.status())
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::LineTooLong { limit } => {
                write!(f, "request line or header exceeds {limit} bytes")
            }
            RequestError::TooManyHeaders { limit } => {
                write!(f, "request has more than {limit} headers")
            }
            RequestError::BadRequestLine { what } => {
                write!(f, "malformed request line: {what}")
            }
            RequestError::BadHeader { what } => write!(f, "malformed header: {what}"),
            RequestError::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found:?}")
            }
            RequestError::UnsupportedTransferEncoding => {
                f.write_str("transfer-encoding framing is not supported; send Content-Length")
            }
            RequestError::LengthRequired => {
                f.write_str("request body requires a Content-Length header")
            }
            RequestError::BadContentLength { what } => {
                write!(f, "malformed Content-Length: {what}")
            }
            RequestError::BodyTooLarge { length, limit } => {
                write!(f, "declared body of {length} bytes exceeds the {limit}-byte limit")
            }
            RequestError::UnexpectedEof => {
                f.write_str("connection closed before the request was complete")
            }
            RequestError::Timeout => f.write_str("timed out reading the request"),
            RequestError::Io(source) => write!(f, "i/o failure mid-request: {source}"),
            RequestError::Codec(source) => write!(f, "undecodable image body: {source}"),
        }
    }
}

impl std::error::Error for RequestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RequestError::Io(source) => Some(source),
            RequestError::Codec(source) => Some(source),
            _ => None,
        }
    }
}

impl From<CodecError> for RequestError {
    fn from(err: CodecError) -> Self {
        RequestError::Codec(err)
    }
}

/// Translate a mid-request socket error into the typed request error:
/// timeouts become [`RequestError::Timeout`], everything else is carried
/// as [`RequestError::Io`].
impl From<std::io::Error> for RequestError {
    fn from(err: std::io::Error) -> Self {
        match err.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                RequestError::Timeout
            }
            std::io::ErrorKind::UnexpectedEof => RequestError::UnexpectedEof,
            _ => RequestError::Io(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn http_error_display_is_exhaustive() {
        let io = HttpError::Io {
            context: "bind",
            source: std::io::Error::new(std::io::ErrorKind::AddrInUse, "taken"),
        };
        assert_eq!(io.to_string(), "http server bind failed: taken");
        assert!(io.source().is_some());
        let cfg = HttpError::InvalidConfig { what: "zero workers".into() };
        assert_eq!(cfg.to_string(), "invalid http config: zero workers");
        assert!(cfg.source().is_none());
    }

    #[test]
    fn request_error_display_and_status_are_exhaustive() {
        // Every variant: (error, status, Display needle). A new variant
        // without a row here fails the count check below.
        let cases: Vec<(RequestError, u16, &str)> = vec![
            (RequestError::LineTooLong { limit: 80 }, 431, "exceeds 80 bytes"),
            (RequestError::TooManyHeaders { limit: 4 }, 431, "more than 4 headers"),
            (
                RequestError::BadRequestLine { what: "missing version" },
                400,
                "malformed request line: missing version",
            ),
            (RequestError::BadHeader { what: "no colon" }, 400, "malformed header: no colon"),
            (
                RequestError::UnsupportedVersion { found: "HTTP/0.9".into() },
                505,
                "unsupported protocol version \"HTTP/0.9\"",
            ),
            (RequestError::UnsupportedTransferEncoding, 501, "send Content-Length"),
            (RequestError::LengthRequired, 411, "requires a Content-Length"),
            (
                RequestError::BadContentLength { what: "not a number" },
                400,
                "malformed Content-Length: not a number",
            ),
            (
                RequestError::BodyTooLarge { length: 100, limit: 64 },
                413,
                "declared body of 100 bytes exceeds the 64-byte limit",
            ),
            (RequestError::UnexpectedEof, 400, "closed before the request was complete"),
            (RequestError::Timeout, 408, "timed out reading the request"),
            (
                RequestError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone")),
                400,
                "i/o failure mid-request: gone",
            ),
            (
                RequestError::Codec(CodecError::UnknownFormat { found: vec![0; 8] }),
                415,
                "undecodable image body",
            ),
        ];
        assert_eq!(cases.len(), 13, "add a row when RequestError grows a variant");
        for (err, status, needle) in cases {
            assert_eq!(err.status(), status, "{err:?}");
            let shown = err.to_string();
            assert!(shown.contains(needle), "{shown:?} should contain {needle:?}");
            assert!(!err.reason().is_empty());
        }
    }

    #[test]
    fn codec_status_split_recognized_vs_unknown() {
        // Recognized container, malformed content → 400; unknown
        // container → 415.
        let malformed = RequestError::from(CodecError::Truncated {
            offset: 0,
            needed: 4,
            len: 1,
        });
        assert_eq!(malformed.status(), 400);
        assert!(malformed.source().is_some());
        let unknown = RequestError::from(CodecError::BadMagic {
            format: scales_data::WireFormat::Ppm,
            found: b"XX".to_vec(),
        });
        assert_eq!(unknown.status(), 415);
    }

    #[test]
    fn io_kind_translation() {
        let timeout =
            RequestError::from(std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow"));
        assert!(matches!(timeout, RequestError::Timeout));
        let timeout2 =
            RequestError::from(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow"));
        assert!(matches!(timeout2, RequestError::Timeout));
        let eof = RequestError::from(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cut",
        ));
        assert!(matches!(eof, RequestError::UnexpectedEof));
        let other =
            RequestError::from(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"));
        assert!(matches!(other, RequestError::Io(_)));
    }
}
