//! # scales-http
//!
//! The network edge of the SCALES reproduction: a std-only HTTP/1.1
//! server over the [`scales-runtime`](scales_runtime) worker pool or a
//! [`scales-router`](scales_router) model fleet. No tokio, no hyper — a
//! [`TcpListener`](std::net::TcpListener) accept thread, a bounded
//! connection backlog, and plain connection-worker threads, matching the
//! runtime's own hand-rolled concurrency style.
//!
//! Routes ([`HttpServer::bind`] serves one runtime;
//! [`HttpServer::bind_router`] serves a named fleet):
//!
//! | Route | Mode | Behavior |
//! |---|---|---|
//! | `POST /v1/upscale` | single | Decode the body ([`scales_data::codec`]: PPM P6 or the PNG subset), submit through [`Runtime::submit_wait_timeout`](scales_runtime::Runtime::submit_wait_timeout), answer `200` with the upscaled image in the same wire format. |
//! | `POST /v1/models/{name}/upscale` | fleet | The same wire contract, routed by model name through [`ModelRouter::submit_wait_timeout`](scales_router::ModelRouter::submit_wait_timeout); an unknown name is a `404`. |
//! | `GET /v1/models` | fleet | The fleet as JSON: name, arch, scale, version, artifact fingerprint, serving state, memory charges. |
//! | `POST /v1/models/{name}/reload` | fleet | Zero-downtime hot-swap from the model's artifact path ([`ModelRouter::reload`](scales_router::ModelRouter::reload)); in-memory models answer `409`. |
//! | `GET /metrics` | both | Prometheus text: the runtime's series, or the fleet's `model`-labeled series, plus the front end's own counters and stage histograms. |
//! | `GET /healthz` | both | `200 ok` liveness probe. |
//! | `GET /v1/debug/traces` | both | The flight recorder as JSON: recent completed-request traces with per-stage nanoseconds; `?slow=1` returns the separately-retained slow ring. |
//! | `GET /v1/debug/profile` | both | Per-op plan profiles (`?model={name}` selects one fleet model); empty until profiling is on ([`RuntimeConfig::profile_ops`](scales_runtime::RuntimeConfig::profile_ops)). |
//!
//! Every request is traced: the server accepts a valid
//! `X-Scales-Request-Id` header (or mints an id), echoes it on **every**
//! response — refusals included — and folds the completed request into
//! the [`FlightRecorder`](scales_telemetry::FlightRecorder) with its
//! eight stage spans (`parse` → `write`), retrievable over the wire at
//! `GET /v1/debug/traces` or in-process via [`HttpServer::traces`].
//!
//! Hardening is the point, not an afterthought: request lines and
//! headers are length- and count-bounded, bodies are
//! `Content-Length`-framed and size-checked before allocation, hostile
//! payloads map to typed [`RequestError`]s with definite 4xx statuses
//! (never a panic or a hung connection), a slow or stuck model answer
//! becomes a `503` after [`HttpConfig::request_timeout`], and
//! [`HttpServer::shutdown`] drains in-flight work through
//! [`Runtime::shutdown`](scales_runtime::Runtime::shutdown) and returns
//! the final serving stats.
//!
//! See the [`HttpServer`] docs for a complete spawn-and-shutdown
//! example, and `examples/http_serve.rs` at the workspace root for a
//! full train → serve → HTTP round trip.

mod config;
mod error;
mod parser;
mod server;

pub use config::HttpConfig;
pub use error::{HttpError, RequestError};
pub use parser::{RequestHead, RequestReader};
pub use server::HttpServer;
