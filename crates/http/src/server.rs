//! [`HttpServer`] — accept loop, connection-worker pool, routing, and
//! graceful shutdown over a [`Runtime`] or a [`ModelRouter`] fleet.
//!
//! Threading model: one accept thread pushes connections into a bounded
//! backlog (`Mutex<VecDeque>` + `Condvar`); [`HttpConfig::workers`]
//! connection workers pop and serve them, one connection at a time, with
//! keep-alive. Idle connections are watched with short poll-tick reads so
//! a shutdown is noticed within ~[`POLL_TICK`] even while blocked on a
//! quiet peer. The accept thread never writes to a socket: backlog-full
//! refusals are handed to a short-lived detached thread with a bounded
//! write timeout, so a stalled peer cannot block intake.
//! [`HttpServer::shutdown`] stops intake, wakes everything, joins the
//! threads, then drains the serving target and returns its final
//! [`RuntimeStats`] (for a fleet, the per-model records folded into one).

use crate::config::HttpConfig;
use crate::error::{HttpError, RequestError};
use crate::parser::{RequestHead, RequestReader};
use scales_data::{decode_image, encode_image};
use scales_router::{ModelRouter, RouterError};
use scales_runtime::{LatencyHistogram, RejectReason, Runtime, RuntimeStats, SubmitError};
use scales_serve::SrRequest;
use scales_telemetry::{render_traces_json, FlightRecorder, OpProfile, RequestId, RequestTrace, Stage};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a worker blocked on a quiet connection re-checks the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Write timeout for the detached backlog-full refusal thread: long
/// enough for any live peer to take a ~100-byte response, short enough
/// that a stalled one cannot pin the thread.
const REFUSAL_WRITE_TIMEOUT: Duration = Duration::from_millis(250);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the front end serves: one runtime, or a named-model fleet.
enum Target {
    Single(Runtime),
    Fleet(ModelRouter),
}

/// State shared by the accept thread, the workers, and the handle.
struct Shared {
    target: Target,
    config: HttpConfig,
    shutdown: AtomicBool,
    /// Accepted connections waiting for a worker (bounded by
    /// [`HttpConfig::max_pending`]).
    backlog: Mutex<VecDeque<TcpStream>>,
    /// Signaled on enqueue and on shutdown.
    work: Condvar,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Connections refused with an immediate `503` off a full backlog.
    refused: AtomicU64,
    /// The flight recorder behind `GET /v1/debug/traces`.
    recorder: FlightRecorder,
    /// HTTP-side stage histograms: wire-codec decode, wire-codec encode,
    /// and response write. (The runtime owns queue/batch/infer.) Each is
    /// its own lock so a decode never contends with a write.
    decode_hist: Mutex<LatencyHistogram>,
    encode_hist: Mutex<LatencyHistogram>,
    write_hist: Mutex<LatencyHistogram>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn count_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running HTTP front end over a [`Runtime`] (single-model mode) or a
/// [`ModelRouter`] (fleet mode).
///
/// Single-model mode serves `POST /v1/upscale`; fleet mode serves
/// `POST /v1/models/{name}/upscale`, `GET /v1/models`, and the
/// zero-downtime `POST /v1/models/{name}/reload`. Both serve `/metrics`
/// and `/healthz`.
///
/// ```
/// use scales_http::{HttpConfig, HttpServer};
/// use scales_runtime::{Runtime, RuntimeConfig};
/// use scales_serve::{Engine, Precision};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # use scales_models::{srresnet, SrConfig};
/// # use scales_core::Method;
/// let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
/// let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;
/// let runtime = Runtime::spawn(engine, RuntimeConfig { workers: 1, ..RuntimeConfig::default() })?;
/// let server = HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default())?;
/// println!("serving on http://{}", server.addr());
/// // ... later:
/// let stats = server.shutdown();
/// assert_eq!(stats.failed, 0);
/// # Ok(())
/// # }
/// ```
pub struct HttpServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind a listener and start the accept thread and connection
    /// workers over a single [`Runtime`]. `addr` may be ephemeral
    /// (`127.0.0.1:0`); the bound address is [`HttpServer::addr`].
    ///
    /// # Errors
    ///
    /// [`HttpError::InvalidConfig`] for unservable sizing,
    /// [`HttpError::Io`] when the socket or a thread cannot be set up.
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Runtime,
        config: HttpConfig,
    ) -> Result<Self, HttpError> {
        Self::bind_target(addr, Target::Single(runtime), config)
    }

    /// Bind a listener over a [`ModelRouter`] fleet: requests route by
    /// model name (`POST /v1/models/{name}/upscale`), `GET /v1/models`
    /// lists the fleet, and `POST /v1/models/{name}/reload` hot-swaps a
    /// path-backed model with zero downtime.
    ///
    /// The router handle is cloned in, so the caller can keep its own
    /// handle for registration and stats while the server runs.
    ///
    /// # Errors
    ///
    /// [`HttpError::InvalidConfig`] for unservable sizing,
    /// [`HttpError::Io`] when the socket or a thread cannot be set up.
    pub fn bind_router(
        addr: impl ToSocketAddrs,
        router: ModelRouter,
        config: HttpConfig,
    ) -> Result<Self, HttpError> {
        Self::bind_target(addr, Target::Fleet(router), config)
    }

    fn bind_target(
        addr: impl ToSocketAddrs,
        target: Target,
        config: HttpConfig,
    ) -> Result<Self, HttpError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)
            .map_err(|source| HttpError::Io { context: "bind", source })?;
        let addr = listener
            .local_addr()
            .map_err(|source| HttpError::Io { context: "local_addr", source })?;
        let shared = Arc::new(Shared {
            target,
            config,
            shutdown: AtomicBool::new(false),
            backlog: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            recorder: FlightRecorder::new(
                config.trace_capacity,
                config.slow_threshold,
                config.slow_trace_capacity,
            ),
            decode_hist: Mutex::new(LatencyHistogram::default()),
            encode_hist: Mutex::new(LatencyHistogram::default()),
            write_hist: Mutex::new(LatencyHistogram::default()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("scales-http-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|source| HttpError::Io { context: "spawn accept thread", source })?
        };
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("scales-http-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|source| HttpError::Io { context: "spawn worker thread", source })?;
            workers.push(handle);
        }
        Ok(Self { shared, addr, accept: Some(accept), workers })
    }

    /// The bound listening address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The runtime behind the server (e.g. for a stats snapshot while
    /// serving). `None` in fleet mode — use [`HttpServer::router`].
    #[must_use]
    pub fn runtime(&self) -> Option<&Runtime> {
        match &self.shared.target {
            Target::Single(runtime) => Some(runtime),
            Target::Fleet(_) => None,
        }
    }

    /// The model fleet behind the server. `None` in single-model mode.
    #[must_use]
    pub fn router(&self) -> Option<&ModelRouter> {
        match &self.shared.target {
            Target::Single(_) => None,
            Target::Fleet(router) => Some(router),
        }
    }

    /// Snapshot of the flight recorder's recent completed-request
    /// traces, oldest → newest — the typed in-process view of
    /// `GET /v1/debug/traces`.
    #[must_use]
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.shared.recorder.recent()
    }

    /// Snapshot of the retained slow traces (end-to-end latency at or
    /// above [`HttpConfig::slow_threshold`]), oldest → newest — the
    /// typed view of `GET /v1/debug/traces?slow=1`.
    #[must_use]
    pub fn slow_traces(&self) -> Vec<RequestTrace> {
        self.shared.recorder.slow()
    }

    /// Stop intake, let workers finish their in-flight requests (open
    /// keep-alive connections are answered with `Connection: close`),
    /// join every thread, then drain the serving target and return its
    /// final stats (a fleet's per-model records are folded into one
    /// [`RuntimeStats`]).
    #[must_use = "the final runtime stats are the serving record"]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        // Every thread is joined, so the handle's Arc and this clone are
        // the only strong references left; dropping `self` makes the
        // clone unique and `try_unwrap` hands the target back.
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(shared) => match shared.target {
                Target::Single(runtime) => runtime.shutdown(),
                Target::Fleet(router) => router.shutdown().merged_runtime(),
            },
            // Never panic in a teardown path: fall back to a snapshot
            // (the single runtime still drains when the last Arc drops;
            // the router's shutdown works through any handle).
            Err(shared) => match &shared.target {
                Target::Single(runtime) => runtime.stats(),
                Target::Fleet(router) => router.shutdown().merged_runtime(),
            },
        }
    }

    /// Set the shutdown flag, wake every blocked thread, join them.
    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        // The accept thread blocks in `accept()`; poke it awake.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

// ---------------------------------------------------------------------------
// Accept loop and worker pool
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutting_down() {
            return;
        }
        let Ok((stream, _peer)) = listener.accept() else {
            // Transient accept failure (EMFILE, aborted handshake):
            // yield briefly rather than spinning.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        if shared.shutting_down() {
            return; // likely the shutdown wake-up poke
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let mut backlog = lock(&shared.backlog);
        if backlog.len() >= shared.config.max_pending {
            drop(backlog);
            // Refuse instead of queueing without bound — but never write
            // from the accept thread: a peer that opened the connection
            // and stopped reading would block intake for everyone. A
            // detached thread with a bounded write timeout delivers the
            // refusal on a best-effort basis; if even spawning fails,
            // dropping the stream (RST) is refusal enough.
            shared.count_response(503);
            shared.refused.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name("scales-http-refusal".into())
                .spawn(move || {
                    let _ = stream.set_write_timeout(Some(REFUSAL_WRITE_TIMEOUT));
                    // No head was read, so there is no client id to
                    // echo; a generated one still lets the peer quote
                    // something findable in the server's logs.
                    let id = RequestId::generate();
                    let response = Response::text(503, "server backlog is full, retry later\n")
                        .retry_after(Some(1));
                    let _ = write_response(&stream, &response, false, false, id.as_str());
                });
            drop(spawned);
        } else {
            backlog.push_back(stream);
            drop(backlog);
            shared.work.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut backlog = lock(&shared.backlog);
            loop {
                if let Some(stream) = backlog.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                backlog = shared
                    .work
                    .wait(backlog)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut reader = RequestReader::new(stream);
    loop {
        // Idle phase: wait for the first byte of the next request with
        // short poll ticks so shutdown is noticed promptly.
        if !reader.has_buffered() {
            let _ = reader.get_ref().set_read_timeout(Some(POLL_TICK));
            let idle_deadline = Instant::now() + shared.config.read_timeout;
            loop {
                if shared.shutting_down() {
                    return; // idle connection: close without a response
                }
                match reader.fill() {
                    Ok(0) => return, // peer closed between requests
                    Ok(_) => break,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if Instant::now() >= idle_deadline {
                            return; // keep-alive idle timeout
                        }
                    }
                    Err(_) => return,
                }
            }
        }

        // Request phase: a started request gets the full read timeout.
        let _ = reader.get_ref().set_read_timeout(Some(shared.config.read_timeout));
        let head = match reader.read_head(&shared.config) {
            Ok(Some(head)) => head,
            Ok(None) => return,
            Err(err) => {
                // Malformed head: typed status, then close (framing is
                // unrecoverable). No head means no client trace id and
                // no timeline to attribute, but the response still
                // carries a generated id — every response does.
                shared.count_response(err.status());
                let response = Response::text(err.status(), format!("{err}\n"));
                let id = RequestId::generate();
                let _ = write_response(reader.get_ref(), &response, false, false, id.as_str());
                return;
            }
        };

        // The deadline budget and the trace clock start here, the moment
        // the head is fully parsed — the body upload and decode count
        // against both, so a slow upload cannot silently extend the
        // client's deadline or vanish from the trace.
        let arrived = Instant::now();
        let head_only = head.method == "HEAD";
        let mut draft = TraceDraft::new(&head, arrived);
        match route(shared, &mut reader, &head, arrived, &mut draft) {
            Ok(response) => {
                shared.count_response(response.status);
                let keep_alive = head.keep_alive && !response.close && !shared.shutting_down();
                let wrote = write_response(
                    reader.get_ref(),
                    &response,
                    head_only,
                    keep_alive,
                    draft.id.as_str(),
                );
                record_trace(shared, &draft, response.status);
                if wrote.is_err() || !keep_alive {
                    return;
                }
            }
            Err(err) => {
                // The body was not (fully) consumed: answer and close.
                shared.count_response(err.status());
                let response = Response::text(err.status(), format!("{err}\n"));
                let _ = write_response(
                    reader.get_ref(),
                    &response,
                    head_only,
                    false,
                    draft.id.as_str(),
                );
                record_trace(shared, &draft, err.status());
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Request tracing
// ---------------------------------------------------------------------------

/// An in-flight request's trace under construction: the id, the trace
/// clock's origin (head parsed), and the stage boundaries reached so
/// far.
///
/// Boundary `i` in `marks` ends stage `i` (parse, decode, submit,
/// queue_wait, batch_wait, infer, encode); the write stage ends at the
/// instant [`TraceDraft::finish`] seals the trace. A boundary a request
/// never reached inherits its predecessor, so the spans always
/// *telescope*: non-negative by construction and summing exactly to the
/// recorded total.
struct TraceDraft {
    id: RequestId,
    arrived: Instant,
    marks: [Option<Instant>; 7],
    tenant: Option<String>,
    model: Option<String>,
    deadline_ms: Option<u64>,
}

impl TraceDraft {
    fn new(head: &RequestHead, arrived: Instant) -> Self {
        Self {
            id: RequestId::accept_or_generate(head.request_id.as_deref()),
            arrived,
            marks: [None; 7],
            tenant: head.tenant.clone(),
            model: None,
            deadline_ms: head.deadline_ms,
        }
    }

    /// End `stage` now.
    fn mark(&mut self, stage: Stage) {
        self.mark_at(stage, Instant::now());
    }

    /// End `stage` at `at` — for boundaries stamped elsewhere (the
    /// runtime's [`RuntimeStamps`](scales_telemetry::RuntimeStamps)).
    fn mark_at(&mut self, stage: Stage, at: Instant) {
        self.marks[stage as usize] = Some(at);
    }

    /// Seal the trace: fold the boundaries into telescoping stage spans
    /// ending at `written`, with the total as their exact sum.
    fn finish(&self, status: u16, written: Instant) -> RequestTrace {
        let mut trace = RequestTrace::new(self.id.clone(), status);
        trace.tenant = self.tenant.clone();
        trace.model = self.model.clone();
        let mut prev = self.arrived;
        for (i, mark) in self.marks.iter().enumerate() {
            let end = mark.unwrap_or(prev);
            trace.stage_ns[i] = span_ns(prev, end);
            // Never let a boundary move the clock backwards: a
            // non-monotone stamp records a zero span and the remainder
            // stays attributed to the stage that actually spent it.
            prev = prev.max(end);
        }
        trace.stage_ns[Stage::Write as usize] = span_ns(prev, written);
        trace.total_ns = trace.stage_ns.iter().sum();
        if let Some(ms) = self.deadline_ms {
            let budget = i64::try_from(ms.saturating_mul(1_000_000)).unwrap_or(i64::MAX);
            let total = i64::try_from(trace.total_ns).unwrap_or(i64::MAX);
            trace.deadline_slack_ns = Some(budget.saturating_sub(total));
        }
        trace
    }
}

/// Non-negative nanoseconds from `start` to `end`, saturating.
fn span_ns(start: Instant, end: Instant) -> u64 {
    u64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX)
}

/// Seal `draft` at this instant, fold its HTTP-side spans into the
/// stage histograms (decode/encode only when that stage actually ran;
/// write always — every response is written), and hand the trace to the
/// flight recorder.
fn record_trace(shared: &Shared, draft: &TraceDraft, status: u16) {
    let trace = draft.finish(status, Instant::now());
    if draft.marks[Stage::Decode as usize].is_some() {
        lock(&shared.decode_hist).record(Duration::from_nanos(trace.stage(Stage::Decode)));
    }
    if draft.marks[Stage::Encode as usize].is_some() {
        lock(&shared.encode_hist).record(Duration::from_nanos(trace.stage(Stage::Encode)));
    }
    lock(&shared.write_hist).record(Duration::from_nanos(trace.stage(Stage::Write)));
    shared.recorder.record(trace);
}

/// Strip the query string from a request target.
fn path_of(target: &str) -> &str {
    target.split(['?', '#']).next().unwrap_or(target)
}

/// The query string of a request target (without the `?`), if any.
fn query_of(target: &str) -> Option<&str> {
    let no_fragment = target.split('#').next().unwrap_or(target);
    no_fragment.split_once('?').map(|(_, q)| q)
}

fn route(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    arrived: Instant,
    draft: &mut TraceDraft,
) -> Result<Response, RequestError> {
    let path = path_of(&head.target);
    if let Some(rest) = path.strip_prefix("/v1/models") {
        return route_models(shared, reader, head, arrived, draft, rest);
    }
    if let Some(which) = path.strip_prefix("/v1/debug/") {
        return route_debug(shared, reader, head, which);
    }
    match (head.method.as_str(), path) {
        ("POST", "/v1/upscale") => match &shared.target {
            Target::Single(runtime) => upscale(shared, reader, head, arrived, draft, runtime),
            // A fleet has no anonymous default model; naming one is the
            // only unambiguous contract. Final status, no body read.
            Target::Fleet(_) => Ok(Response::text(
                404,
                "this server routes by model name; POST /v1/models/{name}/upscale\n",
            )
            .close_if_unread(head)),
        },
        ("GET" | "HEAD", "/metrics") => {
            drain_body(reader, head)?;
            Ok(Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: render_metrics(shared).into_bytes(),
                allow: None,
                retry_after: None,
                close: false,
            })
        }
        ("GET" | "HEAD", "/healthz") => {
            drain_body(reader, head)?;
            Ok(Response::text(200, "ok\n"))
        }
        (_, "/v1/upscale") => {
            // Wrong method: answer with the final status immediately —
            // inviting and draining a body the route will not use (or
            // sending `100 Continue` for it) only wastes the client's
            // upload. An unread body breaks keep-alive framing, so the
            // connection closes after the response.
            Ok(Response::text(405, "use POST\n").allow("POST").close_if_unread(head))
        }
        (_, "/metrics" | "/healthz") => {
            Ok(Response::text(405, "use GET\n").allow("GET, HEAD").close_if_unread(head))
        }
        _ => Ok(Response::text(404, "no such route\n").close_if_unread(head)),
    }
}

/// Routes under `/v1/models`: the fleet surface. `rest` is the target
/// with the `/v1/models` prefix stripped (empty, or `/{name}/{action}`).
fn route_models(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    arrived: Instant,
    draft: &mut TraceDraft,
    rest: &str,
) -> Result<Response, RequestError> {
    let Target::Fleet(router) = &shared.target else {
        return Ok(Response::text(
            404,
            "no model fleet is configured on this server; use /v1/upscale\n",
        )
        .close_if_unread(head));
    };
    // `GET /v1/models` — list the fleet.
    if rest.is_empty() || rest == "/" {
        return match head.method.as_str() {
            "GET" | "HEAD" => {
                drain_body(reader, head)?;
                Ok(Response {
                    status: 200,
                    content_type: "application/json",
                    body: render_model_list(router).into_bytes(),
                    allow: None,
                    retry_after: None,
                    close: false,
                })
            }
            _ => Ok(Response::text(405, "use GET\n").allow("GET, HEAD").close_if_unread(head)),
        };
    }
    // `/v1/models/{name}/{action}`.
    let Some((name, action)) = rest
        .strip_prefix('/')
        .and_then(|r| r.split_once('/'))
        .filter(|(name, _)| !name.is_empty())
    else {
        return Ok(Response::text(404, "no such route\n").close_if_unread(head));
    };
    match action {
        "upscale" => match head.method.as_str() {
            "POST" => fleet_upscale(shared, reader, head, arrived, draft, router, name),
            _ => Ok(Response::text(405, "use POST\n").allow("POST").close_if_unread(head)),
        },
        "reload" => match head.method.as_str() {
            "POST" => {
                drain_body(reader, head)?;
                Ok(reload_model(router, name))
            }
            _ => Ok(Response::text(405, "use POST\n").allow("POST").close_if_unread(head)),
        },
        _ => Ok(Response::text(404, "no such route\n").close_if_unread(head)),
    }
}

/// The debug surface: `GET /v1/debug/traces[?slow=1]` (the flight
/// recorder as JSON) and `GET /v1/debug/profile[?model={name}]` (the
/// per-op plan profiles). `which` is the path with the `/v1/debug/`
/// prefix stripped.
fn route_debug(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    which: &str,
) -> Result<Response, RequestError> {
    if !matches!(which, "traces" | "profile") {
        return Ok(Response::text(404, "no such route\n").close_if_unread(head));
    }
    if !matches!(head.method.as_str(), "GET" | "HEAD") {
        return Ok(Response::text(405, "use GET\n").allow("GET, HEAD").close_if_unread(head));
    }
    drain_body(reader, head)?;
    let query = query_of(&head.target).filter(|q| !q.is_empty());
    let response = match which {
        "traces" => match query {
            None => json_response(render_traces_json(&shared.recorder.recent())),
            Some("slow=1") => json_response(render_traces_json(&shared.recorder.slow())),
            Some(_) => Response::text(400, "unsupported query; the only query is ?slow=1\n"),
        },
        _ => debug_profile(shared, query),
    };
    Ok(response)
}

/// `GET /v1/debug/profile`: per-op plan profiles, per model. Empty `ops`
/// until profiling is switched on
/// ([`RuntimeConfig::profile_ops`](scales_runtime::RuntimeConfig::profile_ops)
/// or `SCALES_PROFILE_OPS=1`) and a forward has run.
fn debug_profile(shared: &Shared, query: Option<&str>) -> Response {
    let wanted = match query {
        None => None,
        Some(q) => match q.split_once('=') {
            Some(("model", name)) if !name.is_empty() => Some(name),
            _ => {
                return Response::text(400, "unsupported query; the only query is ?model={name}\n")
            }
        },
    };
    let of_stats = |stats: Option<RuntimeStats>| stats.map(|s| s.op_profile).unwrap_or_default();
    let profiles: Vec<(Option<String>, OpProfile)> = match (&shared.target, wanted) {
        (Target::Single(runtime), None) => vec![(None, runtime.stats().op_profile)],
        (Target::Single(_), Some(_)) => {
            return Response::text(400, "this server has no model fleet; drop the ?model query\n")
        }
        (Target::Fleet(router), Some(name)) => match router.model(name) {
            Ok(m) => vec![(Some(m.name), of_stats(m.runtime))],
            Err(err) => return router_error_response(&err),
        },
        (Target::Fleet(router), None) => router
            .list()
            .into_iter()
            .map(|m| (Some(m.name), of_stats(m.runtime)))
            .collect(),
    };
    json_response(render_profiles_json(&profiles))
}

/// The profile document: one object per model (the model is `null` on a
/// single-runtime server). Model names come from the router's validated
/// alphabet and op kinds are static strings, so no escaping is needed.
fn render_profiles_json(profiles: &[(Option<String>, OpProfile)]) -> String {
    let mut out = String::with_capacity(64 + profiles.len() * 256);
    out.push_str("{\"profiles\":[");
    for (i, (model, profile)) in profiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match model {
            Some(name) => out.push_str(&format!("{{\"model\":\"{name}\"")),
            None => out.push_str("{\"model\":null"),
        }
        out.push_str(&format!(
            ",\"calls\":{},\"total_ns\":{},\"ops\":{}}}",
            profile.total_calls(),
            profile.total_ns(),
            profile.to_json()
        ));
    }
    out.push_str("]}");
    out
}

/// A `200 application/json` response (a trailing newline is appended —
/// every body this server writes ends in one).
fn json_response(mut body: String) -> Response {
    body.push('\n');
    Response {
        status: 200,
        content_type: "application/json",
        body: body.into_bytes(),
        allow: None,
        retry_after: None,
        close: false,
    }
}

/// Consume a declared body this route does not use, so keep-alive
/// framing survives (the length is already bounded by `max_body`).
fn drain_body(
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
) -> Result<(), RequestError> {
    if head.content_length > 0 {
        send_continue(reader, head)?;
        reader.read_body(head.content_length)?;
    }
    Ok(())
}

/// Honor `Expect: 100-continue` before the body read.
fn send_continue(
    reader: &RequestReader<TcpStream>,
    head: &RequestHead,
) -> Result<(), RequestError> {
    if head.expect_continue && head.http11 {
        let mut stream = reader.get_ref();
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(RequestError::from)?;
    }
    Ok(())
}

/// Build the runtime request for one decoded image, applying the SLO
/// headers: `X-Scales-Tenant` picks the admission lane,
/// `X-Scales-Deadline-Ms` sets the deadline budget from `arrived` — the
/// instant the request head was parsed — so the body upload, the image
/// decode, and the queue wait all count against it. A budget too large
/// to represent as an `Instant` is no deadline at all.
fn build_request(image: scales_data::Image, head: &RequestHead, arrived: Instant) -> SrRequest {
    let mut request = SrRequest::single(image);
    if let Some(tenant) = &head.tenant {
        request = request.tenant(tenant.clone());
    }
    if let Some(deadline) =
        head.deadline_ms.and_then(|ms| arrived.checked_add(Duration::from_millis(ms)))
    {
        request = request.deadline_at(deadline);
    }
    request
}

/// Map a runtime refusal onto the wire: the status, and the
/// `Retry-After` seconds when backing off can help.
///
/// * `429 Too Many Requests` — the *caller* can fix it by slowing down:
///   the queue is full, or this tenant is at its lane quota.
/// * `503 Service Unavailable` — the *server* is unavailable regardless
///   of who asks: shedding, admission timeout, shutting down.
/// * `504 Gateway Timeout` — the request's own deadline expired before
///   it could be served; retrying without a larger budget is pointless,
///   so no `Retry-After`.
/// * `400 Bad Request` — the request itself is invalid.
fn submit_status(err: &SubmitError) -> (u16, Option<u32>) {
    match err.reject_reason() {
        Some(RejectReason::QueueFull | RejectReason::TenantQuota) => (429, Some(1)),
        Some(RejectReason::Shedding) => (503, Some(1)),
        Some(RejectReason::Expired) => (504, None),
        None => match err {
            SubmitError::InvalidRequest(_) => (400, None),
            // Timeout while queued, or shutting down.
            _ => (503, Some(1)),
        },
    }
}

/// `POST /v1/upscale`: decode → submit (bounded wait) → encode in the
/// same wire format.
fn upscale(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    arrived: Instant,
    draft: &mut TraceDraft,
    runtime: &Runtime,
) -> Result<Response, RequestError> {
    if !head.has_length {
        return Err(RequestError::LengthRequired);
    }
    send_continue(reader, head)?;
    let body = reader.read_body(head.content_length)?;
    draft.mark(Stage::Parse);
    let decoded = decode_image(&body);
    draft.mark(Stage::Decode);
    let (image, format) = decoded?;
    let request = build_request(image, head, arrived).request_id(draft.id.clone());
    let outcome = runtime.submit_wait_timeout(request, shared.config.request_timeout);
    let served = match outcome {
        Err(err) => {
            // The failed admission wait is the submit span.
            draft.mark(Stage::Submit);
            let (status, retry) = submit_status(&err);
            return Ok(Response::text(status, format!("{err}\n")).retry_after(retry));
        }
        Ok(Err(infer_err)) => {
            // Error resolutions carry no stamps; the round trip is the
            // forward's to own.
            draft.mark(Stage::Infer);
            return Ok(Response::text(500, format!("inference failed: {infer_err}\n")));
        }
        Ok(Ok(response)) => response,
    };
    mark_runtime_stages(draft, &served);
    let encoded = encode_image(&served.images()[0], format);
    draft.mark(Stage::Encode);
    match encoded {
        Ok(bytes) => Ok(Response {
            status: 200,
            content_type: format.content_type(),
            body: bytes,
            allow: None,
            retry_after: None,
            close: false,
        }),
        Err(err) => Ok(Response::text(500, format!("encoding the result failed: {err}\n"))),
    }
}

/// Fold the runtime's queue-crossing stamps into the draft: they end the
/// submit, queue-wait, batch-wait, and infer stages. (Encode then starts
/// at infer-done, so ticket wake-up and unpacking are attributed to
/// encode, not left unaccounted.)
fn mark_runtime_stages(draft: &mut TraceDraft, served: &scales_serve::SrResponse) {
    if let Some(stamps) = served.stamps() {
        draft.mark_at(Stage::Submit, stamps.enqueued);
        draft.mark_at(Stage::QueueWait, stamps.dequeued);
        draft.mark_at(Stage::BatchWait, stamps.sealed);
        draft.mark_at(Stage::Infer, stamps.infer_done);
    }
}

/// `POST /v1/models/{name}/upscale`: the fleet version of [`upscale`] —
/// same wire contract, routed by model name.
fn fleet_upscale(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    arrived: Instant,
    draft: &mut TraceDraft,
    router: &ModelRouter,
    name: &str,
) -> Result<Response, RequestError> {
    if !head.has_length {
        return Err(RequestError::LengthRequired);
    }
    draft.model = Some(name.to_string());
    send_continue(reader, head)?;
    let body = reader.read_body(head.content_length)?;
    draft.mark(Stage::Parse);
    let decoded = decode_image(&body);
    draft.mark(Stage::Decode);
    let (image, format) = decoded?;
    let request = build_request(image, head, arrived).request_id(draft.id.clone());
    let outcome = router.submit_wait_timeout(name, request, shared.config.request_timeout);
    let served = match outcome {
        Err(err) => {
            draft.mark(Stage::Submit);
            return Ok(router_error_response(&err));
        }
        Ok(Err(infer_err)) => {
            draft.mark(Stage::Infer);
            return Ok(Response::text(500, format!("inference failed: {infer_err}\n")));
        }
        Ok(Ok(response)) => response,
    };
    mark_runtime_stages(draft, &served);
    let encoded = encode_image(&served.images()[0], format);
    draft.mark(Stage::Encode);
    match encoded {
        Ok(bytes) => Ok(Response {
            status: 200,
            content_type: format.content_type(),
            body: bytes,
            allow: None,
            retry_after: None,
            close: false,
        }),
        Err(err) => Ok(Response::text(500, format!("encoding the result failed: {err}\n"))),
    }
}

/// `POST /v1/models/{name}/reload`: zero-downtime hot-swap from the
/// model's artifact path.
fn reload_model(router: &ModelRouter, name: &str) -> Response {
    match router.reload(name) {
        Ok(stats) => Response {
            status: 200,
            content_type: "application/json",
            body: render_model_json(&stats).into_bytes(),
            allow: None,
            retry_after: None,
            close: false,
        },
        Err(err) => router_error_response(&err),
    }
}

/// Map the router's typed errors onto the HTTP status space: unknown
/// name → 404, duplicate/pinned conflicts → 409, failed load → 500,
/// invalid request → 400, and runtime refusals through [`submit_status`]
/// (client-paced 429 vs server-side 503 vs expired-deadline 504, with
/// `Retry-After` where backing off helps).
fn router_error_response(err: &RouterError) -> Response {
    let (status, retry) = match err {
        RouterError::UnknownModel { .. } => (404, None),
        RouterError::DuplicateModel { .. } | RouterError::NotReloadable { .. } => (409, None),
        RouterError::InvalidName { .. } => (400, None),
        RouterError::Load { .. } => (500, None),
        RouterError::Submit(sub) => submit_status(sub),
        RouterError::ShuttingDown => (503, Some(1)),
    };
    Response::text(status, format!("{err}\n")).retry_after(retry)
}

/// The `GET /v1/models` document: the fleet as a JSON array. Hand-rolled
/// like the wire codecs — every value is a number, a bool, or a string
/// from a validated alphabet (names) or a fixed set (arch, state), so no
/// escaping is needed.
fn render_model_list(router: &ModelRouter) -> String {
    let models = router.list();
    let mut out = String::with_capacity(128 * models.len() + 16);
    out.push_str("{\"models\":[");
    for (i, m) in models.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_model_json(m));
    }
    out.push_str("]}\n");
    out
}

/// One model's identity and state as a JSON object.
fn render_model_json(m: &scales_router::ModelStats) -> String {
    format!(
        "{{\"name\":\"{}\",\"arch\":\"{}\",\"scale\":{},\"version\":{},\
         \"fingerprint\":\"{:016x}\",\"state\":\"{}\",\"weight_bytes\":{},\
         \"resident_bytes\":{},\"reloadable\":{},\"evictions\":{},\"swaps\":{}}}",
        m.name,
        m.arch,
        m.scale,
        m.version,
        m.fingerprint,
        m.state,
        m.weight_bytes,
        m.resident_bytes,
        m.reloadable,
        m.evictions,
        m.swaps,
    )
}

/// The `/metrics` document: the serving target's Prometheus rendering
/// (per-model series in fleet mode) plus the HTTP front end's own
/// counters.
fn render_metrics(shared: &Shared) -> String {
    let mut out = match &shared.target {
        Target::Single(runtime) => runtime.stats().render_prometheus(),
        Target::Fleet(router) => router.render_prometheus(),
    };
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "scales_http_connections_total",
        "Connections accepted by the HTTP front end.",
        shared.connections.load(Ordering::Relaxed),
    );
    counter(
        "scales_http_requests_total",
        "HTTP responses sent.",
        shared.requests.load(Ordering::Relaxed),
    );
    counter(
        "scales_http_errors_total",
        "HTTP responses with a 4xx or 5xx status.",
        shared.errors.load(Ordering::Relaxed),
    );
    counter(
        "scales_http_refused_total",
        "Connections refused off a full accept backlog with an immediate 503.",
        shared.refused.load(Ordering::Relaxed),
    );
    // The HTTP-side stage histograms render only once a response has
    // been written (all three together, so scrapes always see a
    // consistent label set).
    let stages: [(&str, LatencyHistogram); 3] = [
        ("decode", *lock(&shared.decode_hist)),
        ("encode", *lock(&shared.encode_hist)),
        ("write", *lock(&shared.write_hist)),
    ];
    if stages.iter().any(|(_, h)| h.count() > 0) {
        let name = "scales_http_stage_seconds";
        out.push_str(&format!(
            "# HELP {name} Per-request stage spans at the HTTP edge (wire-codec decode, wire-codec encode, response write).\n# TYPE {name} histogram\n"
        ));
        for (stage, hist) in &stages {
            hist.render_prometheus_into(&mut out, name, &format!("stage=\"{stage}\","));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    allow: Option<&'static str>,
    /// `Retry-After` seconds on overload responses (429/503), telling
    /// well-behaved clients when backing off is worth it.
    retry_after: Option<u32>,
    /// Close the connection after this response even on a keep-alive
    /// request — set when a declared request body was left unread (the
    /// framing of any pipelined request behind it is unknowable).
    close: bool,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            allow: None,
            retry_after: None,
            close: false,
        }
    }

    fn allow(mut self, methods: &'static str) -> Self {
        self.allow = Some(methods);
        self
    }

    fn retry_after(mut self, seconds: Option<u32>) -> Self {
        self.retry_after = seconds;
        self
    }

    /// Mark the connection for closing when the request declared a body
    /// this route chose not to read. Responding with the final status
    /// immediately (instead of inviting the upload with `100 Continue`
    /// and draining it) is the hardening; the close keeps the framing
    /// honest.
    fn close_if_unread(mut self, head: &RequestHead) -> Self {
        self.close = head.content_length > 0;
        self
    }
}

fn write_response(
    mut stream: &TcpStream,
    response: &Response,
    head_only: bool,
    keep_alive: bool,
    request_id: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nX-Scales-Request-Id: {}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        request_id,
    );
    if let Some(methods) = response.allow {
        head.push_str("Allow: ");
        head.push_str(methods);
        head.push_str("\r\n");
    }
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(&response.body)?;
    }
    stream.flush()
}

/// The canonical reason phrase for every status this server emits.
pub(crate) fn reason_phrase(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Content Too Large",
        415 => "Unsupported Media Type",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}
