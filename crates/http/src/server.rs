//! [`HttpServer`] — accept loop, connection-worker pool, routing, and
//! graceful shutdown over a [`Runtime`].
//!
//! Threading model: one accept thread pushes connections into a bounded
//! backlog (`Mutex<VecDeque>` + `Condvar`); [`HttpConfig::workers`]
//! connection workers pop and serve them, one connection at a time, with
//! keep-alive. Idle connections are watched with short poll-tick reads so
//! a shutdown is noticed within ~[`POLL_TICK`] even while blocked on a
//! quiet peer. [`HttpServer::shutdown`] stops intake, wakes everything,
//! joins the threads, then drains the runtime through
//! [`Runtime::shutdown`] and returns its final [`RuntimeStats`].

use crate::config::HttpConfig;
use crate::error::{HttpError, RequestError};
use crate::parser::{RequestHead, RequestReader};
use scales_data::{decode_image, encode_image};
use scales_runtime::{Runtime, RuntimeStats, SubmitError};
use scales_serve::SrRequest;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a worker blocked on a quiet connection re-checks the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the accept thread, the workers, and the handle.
struct Shared {
    runtime: Runtime,
    config: HttpConfig,
    shutdown: AtomicBool,
    /// Accepted connections waiting for a worker (bounded by
    /// [`HttpConfig::max_pending`]).
    backlog: Mutex<VecDeque<TcpStream>>,
    /// Signaled on enqueue and on shutdown.
    work: Condvar,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn count_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running HTTP front end over a [`Runtime`].
///
/// ```
/// use scales_http::{HttpConfig, HttpServer};
/// use scales_runtime::{Runtime, RuntimeConfig};
/// use scales_serve::{Engine, Precision};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # use scales_models::{srresnet, SrConfig};
/// # use scales_core::Method;
/// let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
/// let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;
/// let runtime = Runtime::spawn(engine, RuntimeConfig { workers: 1, ..RuntimeConfig::default() })?;
/// let server = HttpServer::bind("127.0.0.1:0", runtime, HttpConfig::default())?;
/// println!("serving on http://{}", server.addr());
/// // ... later:
/// let stats = server.shutdown();
/// assert_eq!(stats.failed, 0);
/// # Ok(())
/// # }
/// ```
pub struct HttpServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind a listener and start the accept thread and connection
    /// workers. `addr` may be ephemeral (`127.0.0.1:0`); the bound
    /// address is [`HttpServer::addr`].
    ///
    /// # Errors
    ///
    /// [`HttpError::InvalidConfig`] for unservable sizing,
    /// [`HttpError::Io`] when the socket or a thread cannot be set up.
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Runtime,
        config: HttpConfig,
    ) -> Result<Self, HttpError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)
            .map_err(|source| HttpError::Io { context: "bind", source })?;
        let addr = listener
            .local_addr()
            .map_err(|source| HttpError::Io { context: "local_addr", source })?;
        let shared = Arc::new(Shared {
            runtime,
            config,
            shutdown: AtomicBool::new(false),
            backlog: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("scales-http-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|source| HttpError::Io { context: "spawn accept thread", source })?
        };
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("scales-http-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|source| HttpError::Io { context: "spawn worker thread", source })?;
            workers.push(handle);
        }
        Ok(Self { shared, addr, accept: Some(accept), workers })
    }

    /// The bound listening address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The runtime behind the server (e.g. for a stats snapshot while
    /// serving).
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.shared.runtime
    }

    /// Stop intake, let workers finish their in-flight requests (open
    /// keep-alive connections are answered with `Connection: close`),
    /// join every thread, then drain the runtime and return its final
    /// stats.
    #[must_use = "the final runtime stats are the serving record"]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.stop();
        // Every thread is joined, so the handle's Arc and this clone are
        // the only strong references left; dropping `self` makes the
        // clone unique and `try_unwrap` hands the runtime back.
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(shared) => shared.runtime.shutdown(),
            // Never panic in a teardown path: fall back to a snapshot
            // (the runtime still drains when the last Arc drops).
            Err(shared) => shared.runtime.stats(),
        }
    }

    /// Set the shutdown flag, wake every blocked thread, join them.
    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        // The accept thread blocks in `accept()`; poke it awake.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

// ---------------------------------------------------------------------------
// Accept loop and worker pool
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutting_down() {
            return;
        }
        let Ok((stream, _peer)) = listener.accept() else {
            // Transient accept failure (EMFILE, aborted handshake):
            // yield briefly rather than spinning.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        if shared.shutting_down() {
            return; // likely the shutdown wake-up poke
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        let mut backlog = lock(&shared.backlog);
        if backlog.len() >= shared.config.max_pending {
            drop(backlog);
            // Refuse instead of queueing without bound.
            let response = Response::text(503, "server backlog is full, retry later\n");
            let _ = write_response(&stream, &response, false, false);
            shared.count_response(503);
        } else {
            backlog.push_back(stream);
            drop(backlog);
            shared.work.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut backlog = lock(&shared.backlog);
            loop {
                if let Some(stream) = backlog.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                backlog = shared
                    .work
                    .wait(backlog)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut reader = RequestReader::new(stream);
    loop {
        // Idle phase: wait for the first byte of the next request with
        // short poll ticks so shutdown is noticed promptly.
        if !reader.has_buffered() {
            let _ = reader.get_ref().set_read_timeout(Some(POLL_TICK));
            let idle_deadline = Instant::now() + shared.config.read_timeout;
            loop {
                if shared.shutting_down() {
                    return; // idle connection: close without a response
                }
                match reader.fill() {
                    Ok(0) => return, // peer closed between requests
                    Ok(_) => break,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if Instant::now() >= idle_deadline {
                            return; // keep-alive idle timeout
                        }
                    }
                    Err(_) => return,
                }
            }
        }

        // Request phase: a started request gets the full read timeout.
        let _ = reader.get_ref().set_read_timeout(Some(shared.config.read_timeout));
        let head = match reader.read_head(&shared.config) {
            Ok(Some(head)) => head,
            Ok(None) => return,
            Err(err) => {
                // Malformed head: typed status, then close (framing is
                // unrecoverable).
                shared.count_response(err.status());
                let response = Response::text(err.status(), format!("{err}\n"));
                let _ = write_response(reader.get_ref(), &response, false, false);
                return;
            }
        };

        let head_only = head.method == "HEAD";
        match route(shared, &mut reader, &head) {
            Ok(response) => {
                shared.count_response(response.status);
                let keep_alive = head.keep_alive && !shared.shutting_down();
                if write_response(reader.get_ref(), &response, head_only, keep_alive).is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(err) => {
                // The body was not (fully) consumed: answer and close.
                shared.count_response(err.status());
                let response = Response::text(err.status(), format!("{err}\n"));
                let _ = write_response(reader.get_ref(), &response, head_only, false);
                return;
            }
        }
    }
}

/// Strip the query string from a request target.
fn path_of(target: &str) -> &str {
    target.split(['?', '#']).next().unwrap_or(target)
}

fn route(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
) -> Result<Response, RequestError> {
    match (head.method.as_str(), path_of(&head.target)) {
        ("POST", "/v1/upscale") => upscale(shared, reader, head),
        ("GET" | "HEAD", "/metrics") => {
            drain_body(reader, head)?;
            Ok(Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: render_metrics(shared).into_bytes(),
                allow: None,
            })
        }
        ("GET" | "HEAD", "/healthz") => {
            drain_body(reader, head)?;
            Ok(Response::text(200, "ok\n"))
        }
        (_, "/v1/upscale") => {
            drain_body(reader, head)?;
            Ok(Response::text(405, "use POST\n").allow("POST"))
        }
        (_, "/metrics" | "/healthz") => {
            drain_body(reader, head)?;
            Ok(Response::text(405, "use GET\n").allow("GET, HEAD"))
        }
        _ => {
            drain_body(reader, head)?;
            Ok(Response::text(404, "no such route\n"))
        }
    }
}

/// Consume a declared body this route does not use, so keep-alive
/// framing survives (the length is already bounded by `max_body`).
fn drain_body(
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
) -> Result<(), RequestError> {
    if head.content_length > 0 {
        send_continue(reader, head)?;
        reader.read_body(head.content_length)?;
    }
    Ok(())
}

/// Honor `Expect: 100-continue` before the body read.
fn send_continue(
    reader: &RequestReader<TcpStream>,
    head: &RequestHead,
) -> Result<(), RequestError> {
    if head.expect_continue && head.http11 {
        let mut stream = reader.get_ref();
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(RequestError::from)?;
    }
    Ok(())
}

/// `POST /v1/upscale`: decode → submit (bounded wait) → encode in the
/// same wire format.
fn upscale(
    shared: &Shared,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
) -> Result<Response, RequestError> {
    if !head.has_length {
        return Err(RequestError::LengthRequired);
    }
    send_continue(reader, head)?;
    let body = reader.read_body(head.content_length)?;
    let (image, format) = decode_image(&body)?;
    let outcome = shared
        .runtime
        .submit_wait_timeout(SrRequest::single(image), shared.config.request_timeout);
    let served = match outcome {
        Err(err @ SubmitError::InvalidRequest(_)) => {
            return Ok(Response::text(400, format!("{err}\n")));
        }
        Err(err) => {
            // QueueFull / ShuttingDown / Timeout: overload, not client
            // fault.
            return Ok(Response::text(503, format!("{err}\n")));
        }
        Ok(Err(infer_err)) => {
            return Ok(Response::text(500, format!("inference failed: {infer_err}\n")));
        }
        Ok(Ok(response)) => response,
    };
    match encode_image(&served.images()[0], format) {
        Ok(bytes) => Ok(Response {
            status: 200,
            content_type: format.content_type(),
            body: bytes,
            allow: None,
        }),
        Err(err) => Ok(Response::text(500, format!("encoding the result failed: {err}\n"))),
    }
}

/// The `/metrics` document: the runtime's Prometheus rendering plus the
/// HTTP front end's own counters.
fn render_metrics(shared: &Shared) -> String {
    let mut out = shared.runtime.stats().render_prometheus();
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "scales_http_connections_total",
        "Connections accepted by the HTTP front end.",
        shared.connections.load(Ordering::Relaxed),
    );
    counter(
        "scales_http_requests_total",
        "HTTP responses sent.",
        shared.requests.load(Ordering::Relaxed),
    );
    counter(
        "scales_http_errors_total",
        "HTTP responses with a 4xx or 5xx status.",
        shared.errors.load(Ordering::Relaxed),
    );
    out
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    allow: Option<&'static str>,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            allow: None,
        }
    }

    fn allow(mut self, methods: &'static str) -> Self {
        self.allow = Some(methods);
        self
    }
}

fn write_response(
    mut stream: &TcpStream,
    response: &Response,
    head_only: bool,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
    );
    if let Some(methods) = response.allow {
        head.push_str("Allow: ");
        head.push_str(methods);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(&response.body)?;
    }
    stream.flush()
}

/// The canonical reason phrase for every status this server emits.
pub(crate) fn reason_phrase(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Content Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}
