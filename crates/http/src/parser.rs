//! Hardened HTTP/1.1 request parsing over any [`Read`] stream.
//!
//! The parser is deliberately narrow: request line + headers with hard
//! length/count limits, `Content-Length`-framed bodies only (any
//! `Transfer-Encoding` is a typed `501`), `Connection: keep-alive` /
//! `close`, and `Expect: 100-continue`. Head and body reads are split so
//! the server can interpose the `100 Continue` interim response — and
//! *skip* it (straight to the error) when the head alone already dooms
//! the request.

use crate::config::HttpConfig;
use crate::error::RequestError;
use std::io::Read;

/// A parsed request head: everything before the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// The method token, as sent (methods are case-sensitive).
    pub method: String,
    /// The request target (path + optional query), e.g. `/v1/upscale`.
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Declared body length (0 when no `Content-Length` was sent).
    pub content_length: usize,
    /// Whether a `Content-Length` header was present at all — routes
    /// that require a body distinguish "0-length body" from "no body".
    pub has_length: bool,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Whether the peer sent `Expect: 100-continue`.
    pub expect_continue: bool,
    /// Validated `X-Scales-Tenant` header: the tenant lane the runtime's
    /// admission controller queues this request under.
    pub tenant: Option<String>,
    /// `X-Scales-Deadline-Ms` header: the request's deadline budget in
    /// milliseconds from arrival. `0` is legal and means "already due" —
    /// the runtime refuses it as expired.
    pub deadline_ms: Option<u64>,
    /// `X-Scales-Request-Id` header, kept only when it satisfies the
    /// shared name rule (1–64 characters of `[A-Za-z0-9._-]`). An
    /// invalid id is *dropped*, never a `400` — the server mints a fresh
    /// one instead, so a hostile header cannot break correlation and a
    /// well-formed request is never refused over its trace id.
    pub request_id: Option<String>,
}

impl RequestHead {
    /// First value of the named header (name must be lowercase).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Buffered request reader over a byte stream.
///
/// One `RequestReader` lives per connection and carries read-ahead
/// between keep-alive requests (a pipelined second request is not lost).
pub struct RequestReader<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R) -> Self {
        Self { inner, buf: vec![0; 8 << 10], start: 0, end: 0 }
    }

    /// Whether bytes are already buffered (a pipelined next request).
    #[must_use]
    pub fn has_buffered(&self) -> bool {
        self.start < self.end
    }

    /// The wrapped stream (to adjust socket timeouts mid-connection).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Pull more bytes from the stream into the buffer. Returns the
    /// number of new bytes; `Ok(0)` means clean end of stream.
    ///
    /// # Errors
    ///
    /// Propagates the stream's own error (timeouts included) untyped —
    /// callers decide whether a timeout is an idle keep-alive close or a
    /// mid-request `408`.
    pub fn fill(&mut self) -> std::io::Result<usize> {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.end == self.buf.len() {
            // Compact so a line split across fills keeps fitting as long
            // as it is under the buffer size.
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        let n = self.inner.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    fn next_byte(&mut self) -> Result<Option<u8>, RequestError> {
        if self.start == self.end && self.fill().map_err(RequestError::from)? == 0 {
            return Ok(None);
        }
        let b = self.buf[self.start];
        self.start += 1;
        Ok(Some(b))
    }

    /// Read one `\n`-terminated line (CRLF or bare LF), without the
    /// terminator. `Ok(None)` only on end-of-stream *before any byte* —
    /// EOF mid-line is [`RequestError::UnexpectedEof`].
    fn read_line(&mut self, max_line: usize) -> Result<Option<Vec<u8>>, RequestError> {
        let mut line = Vec::new();
        loop {
            match self.next_byte()? {
                None if line.is_empty() => return Ok(None),
                None => return Err(RequestError::UnexpectedEof),
                Some(b'\n') => {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                Some(b) => {
                    if line.len() >= max_line {
                        return Err(RequestError::LineTooLong { limit: max_line });
                    }
                    line.push(b);
                }
            }
        }
    }

    /// Parse one request head.
    ///
    /// Returns `Ok(None)` when the peer closed the connection cleanly
    /// between requests (normal keep-alive teardown, not an error).
    ///
    /// # Errors
    ///
    /// Every malformed or over-limit head is a typed [`RequestError`]
    /// carrying its HTTP status.
    pub fn read_head(&mut self, config: &HttpConfig) -> Result<Option<RequestHead>, RequestError> {
        // Tolerate stray CRLF before the request line (RFC 9112 §2.2).
        let line = loop {
            match self.read_line(config.max_line)? {
                None => return Ok(None),
                Some(l) if l.is_empty() => continue,
                Some(l) => break l,
            }
        };
        let line = std::str::from_utf8(&line)
            .map_err(|_| RequestError::BadRequestLine { what: "not valid UTF-8" })?;
        let mut parts = line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
            _ => {
                return Err(RequestError::BadRequestLine {
                    what: "expected `METHOD SP TARGET SP VERSION`",
                })
            }
        };
        if !method.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
            return Err(RequestError::BadRequestLine { what: "method is not a token" });
        }
        if !(target.starts_with('/') || target == "*") {
            return Err(RequestError::BadRequestLine { what: "target must be absolute" });
        }
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(RequestError::UnsupportedVersion { found: version.to_string() }),
        };

        let mut head = RequestHead {
            method: method.to_string(),
            target: target.to_string(),
            http11,
            headers: Vec::new(),
            content_length: 0,
            has_length: false,
            keep_alive: http11, // HTTP/1.1 defaults to persistent
            expect_continue: false,
            tenant: None,
            deadline_ms: None,
            request_id: None,
        };
        loop {
            let line = self.read_line(config.max_line)?.ok_or(RequestError::UnexpectedEof)?;
            if line.is_empty() {
                break;
            }
            if head.headers.len() >= config.max_headers {
                return Err(RequestError::TooManyHeaders { limit: config.max_headers });
            }
            if line[0] == b' ' || line[0] == b'\t' {
                return Err(RequestError::BadHeader { what: "obsolete line folding" });
            }
            let line = std::str::from_utf8(&line)
                .map_err(|_| RequestError::BadHeader { what: "not valid UTF-8" })?;
            let (name, value) =
                line.split_once(':').ok_or(RequestError::BadHeader { what: "missing colon" })?;
            if name.is_empty()
                || !name.bytes().all(|b| b.is_ascii_alphanumeric() || b"-_.".contains(&b))
            {
                return Err(RequestError::BadHeader { what: "name is not a token" });
            }
            head.headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }

        self.interpret_headers(&mut head, config)?;
        Ok(Some(head))
    }

    fn interpret_headers(
        &self,
        head: &mut RequestHead,
        config: &HttpConfig,
    ) -> Result<(), RequestError> {
        let mut seen_length: Option<u64> = None;
        for (name, value) in &head.headers {
            match name.as_str() {
                "transfer-encoding" => return Err(RequestError::UnsupportedTransferEncoding),
                "content-length" => {
                    let parsed: u64 = value
                        .parse()
                        .map_err(|_| RequestError::BadContentLength { what: "not a decimal integer" })?;
                    if seen_length.is_some_and(|prev| prev != parsed) {
                        return Err(RequestError::BadContentLength {
                            what: "conflicting values",
                        });
                    }
                    seen_length = Some(parsed);
                }
                "connection" => {
                    for token in value.split(',') {
                        match token.trim().to_ascii_lowercase().as_str() {
                            "close" => head.keep_alive = false,
                            "keep-alive" => head.keep_alive = true,
                            _ => {}
                        }
                    }
                }
                "expect" if value.eq_ignore_ascii_case("100-continue") => {
                    head.expect_continue = true;
                }
                "x-scales-tenant" => {
                    if !valid_tenant(value) {
                        return Err(RequestError::BadHeader {
                            what: "tenant must be 1-64 characters of [A-Za-z0-9._-]",
                        });
                    }
                    head.tenant = Some(value.clone());
                }
                // The request-id rule is the same token alphabet as the
                // tenant rule, but the failure mode differs by design:
                // a bad id is ignored (the server generates one), while
                // a bad tenant is a 400 — it would change which
                // admission lane does the accounting.
                "x-scales-request-id" if valid_tenant(value) => {
                    head.request_id = Some(value.clone());
                }
                "x-scales-deadline-ms" => {
                    let parsed: u64 = value.parse().map_err(|_| RequestError::BadHeader {
                        what: "deadline must be a decimal number of milliseconds",
                    })?;
                    head.deadline_ms = Some(parsed);
                }
                _ => {}
            }
        }
        if let Some(length) = seen_length {
            if length > config.max_body as u64 {
                return Err(RequestError::BodyTooLarge { length, limit: config.max_body });
            }
            head.has_length = true;
            head.content_length = usize::try_from(length)
                .map_err(|_| RequestError::BadContentLength { what: "does not fit in memory" })?;
        }
        Ok(())
    }

    /// Read exactly `length` body bytes (already validated against
    /// [`max_body`](HttpConfig::max_body) by [`read_head`](Self::read_head)).
    ///
    /// # Errors
    ///
    /// [`RequestError::UnexpectedEof`] when the peer closes early,
    /// [`RequestError::Timeout`] when it stalls.
    pub fn read_body(&mut self, length: usize) -> Result<Vec<u8>, RequestError> {
        let mut body = Vec::with_capacity(length);
        // Drain the read-ahead first.
        let buffered = (self.end - self.start).min(length);
        body.extend_from_slice(&self.buf[self.start..self.start + buffered]);
        self.start += buffered;
        while body.len() < length {
            let want = (length - body.len()).min(self.buf.len());
            let n = self.inner.read(&mut self.buf[..want]).map_err(RequestError::from)?;
            if n == 0 {
                return Err(RequestError::UnexpectedEof);
            }
            body.extend_from_slice(&self.buf[..n]);
        }
        Ok(body)
    }
}

/// Same tenant-name rule the runtime and router enforce (1–64 characters
/// of `[A-Za-z0-9._-]`), applied at the wire so a hostile header is a
/// clean `400` before any image bytes are decoded.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(bytes: &[u8]) -> RequestReader<Cursor<Vec<u8>>> {
        RequestReader::new(Cursor::new(bytes.to_vec()))
    }

    fn head_of(bytes: &[u8]) -> RequestHead {
        reader(bytes)
            .read_head(&HttpConfig::default())
            .expect("head parses")
            .expect("stream not empty")
    }

    fn err_of(bytes: &[u8]) -> RequestError {
        reader(bytes)
            .read_head(&HttpConfig::default())
            .expect_err("head must be rejected")
    }

    #[test]
    fn parses_a_get_head() {
        let head = head_of(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/healthz");
        assert!(head.http11);
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(!head.has_length);
        assert_eq!(head.header("host"), Some("localhost"));
    }

    #[test]
    fn parses_a_post_with_body() {
        let mut r = reader(b"POST /v1/upscale HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
        let head = r.read_head(&HttpConfig::default()).unwrap().unwrap();
        assert!(head.has_length);
        assert_eq!(head.content_length, 5);
        assert_eq!(r.read_body(head.content_length).unwrap(), b"hello");
    }

    #[test]
    fn pipelined_requests_are_not_lost() {
        let mut r = reader(
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nxyGET /b HTTP/1.1\r\n\r\n",
        );
        let cfg = HttpConfig::default();
        let first = r.read_head(&cfg).unwrap().unwrap();
        assert_eq!(r.read_body(first.content_length).unwrap(), b"xy");
        let second = r.read_head(&cfg).unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert!(r.read_head(&cfg).unwrap().is_none(), "clean EOF after the last request");
    }

    #[test]
    fn connection_and_expect_headers_are_interpreted() {
        let head =
            head_of(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!head.keep_alive);
        let head = head_of(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!head.keep_alive, "HTTP/1.0 defaults to close");
        let head = head_of(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(head.keep_alive);
        let head = head_of(
            b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(head.expect_continue);
    }

    #[test]
    fn slo_headers_are_interpreted_and_validated() {
        let head = head_of(
            b"POST /v1/upscale HTTP/1.1\r\nX-Scales-Tenant: acme-2.0\r\nX-Scales-Deadline-Ms: 250\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(head.tenant.as_deref(), Some("acme-2.0"));
        assert_eq!(head.deadline_ms, Some(250));
        let plain = head_of(b"GET / HTTP/1.1\r\n\r\n");
        assert_eq!(plain.tenant, None);
        assert_eq!(plain.deadline_ms, None);
        // Zero is legal on the wire: the runtime refuses it as expired.
        let due = head_of(b"GET / HTTP/1.1\r\nX-Scales-Deadline-Ms: 0\r\n\r\n");
        assert_eq!(due.deadline_ms, Some(0));
        assert!(matches!(
            err_of(b"GET / HTTP/1.1\r\nX-Scales-Tenant: not a tenant!\r\n\r\n"),
            RequestError::BadHeader { what: "tenant must be 1-64 characters of [A-Za-z0-9._-]" }
        ));
        let long = format!("GET / HTTP/1.1\r\nX-Scales-Tenant: {}\r\n\r\n", "x".repeat(65));
        assert!(matches!(err_of(long.as_bytes()), RequestError::BadHeader { .. }));
        assert!(matches!(
            err_of(b"GET / HTTP/1.1\r\nX-Scales-Deadline-Ms: soon\r\n\r\n"),
            RequestError::BadHeader { what: "deadline must be a decimal number of milliseconds" }
        ));
    }

    #[test]
    fn request_id_header_is_kept_only_when_valid() {
        let head = head_of(
            b"POST /v1/upscale HTTP/1.1\r\nX-Scales-Request-Id: trace-42.a_b\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(head.request_id.as_deref(), Some("trace-42.a_b"));
        // Invalid ids are dropped, never refused: the request still
        // parses and the server will mint a replacement id.
        for hostile in
            ["not an id!", "", &"x".repeat(65), "new\nline"].map(|id| {
                format!("GET / HTTP/1.1\r\nX-Scales-Request-Id: {id}\r\n\r\n")
            })
        {
            // A raw \n inside the value splits the header line; every
            // variant must still parse (possibly as a different split)
            // or fail for a *header* reason, never leave a bad id.
            if let Ok(Some(head)) = reader(hostile.as_bytes()).read_head(&HttpConfig::default()) {
                assert_eq!(head.request_id, None, "hostile id must be dropped: {hostile:?}");
            }
        }
        assert_eq!(head_of(b"GET / HTTP/1.1\r\n\r\n").request_id, None);
    }

    #[test]
    fn bare_lf_lines_and_leading_crlf_are_tolerated() {
        let head = head_of(b"\r\nGET /x HTTP/1.1\nHost: a\n\n");
        assert_eq!(head.target, "/x");
        assert_eq!(head.header("host"), Some("a"));
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(reader(b"").read_head(&HttpConfig::default()).unwrap().is_none());
    }

    #[test]
    fn hostile_heads_get_typed_errors() {
        assert!(matches!(err_of(b"GET\r\n\r\n"), RequestError::BadRequestLine { .. }));
        assert!(matches!(
            err_of(b"GET /x HTTP/2\r\n\r\n"),
            RequestError::UnsupportedVersion { .. }
        ));
        assert!(matches!(
            err_of(b"G@T /x HTTP/1.1\r\n\r\n"),
            RequestError::BadRequestLine { what: "method is not a token" }
        ));
        assert!(matches!(
            err_of(b"GET x HTTP/1.1\r\n\r\n"),
            RequestError::BadRequestLine { what: "target must be absolute" }
        ));
        assert!(matches!(err_of(b"GET /x HTTP/1.1\r\nbad header\r\n\r\n"), RequestError::BadHeader { .. }));
        assert!(matches!(
            err_of(b"GET /x HTTP/1.1\r\n folded\r\n\r\n"),
            RequestError::BadHeader { what: "obsolete line folding" }
        ));
        assert!(matches!(
            err_of(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            RequestError::UnsupportedTransferEncoding
        ));
        assert!(matches!(
            err_of(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            RequestError::BadContentLength { .. }
        ));
        assert!(matches!(
            err_of(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n"),
            RequestError::BadContentLength { .. }
        ));
        assert!(matches!(
            err_of(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n"),
            RequestError::BadContentLength { what: "conflicting values" }
        ));
        assert!(matches!(err_of(b"GET /x HTTP/1.1\r\nHost: a"), RequestError::UnexpectedEof));
    }

    #[test]
    fn limits_are_enforced() {
        let cfg = HttpConfig { max_line: 16, max_headers: 2, ..HttpConfig::default() };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert!(matches!(
            reader(long.as_bytes()).read_head(&cfg).unwrap_err(),
            RequestError::LineTooLong { limit: 16 }
        ));
        let many = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert!(matches!(
            reader(many).read_head(&cfg).unwrap_err(),
            RequestError::TooManyHeaders { limit: 2 }
        ));
        let big = b"POST / HTTP/1.1\r\nContent-Length: 1000000000\r\n\r\n";
        assert!(matches!(
            reader(big).read_head(&HttpConfig::default()).unwrap_err(),
            RequestError::BodyTooLarge { length: 1_000_000_000, .. }
        ));
    }

    #[test]
    fn body_shorter_than_declared_is_unexpected_eof() {
        let mut r = reader(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        let head = r.read_head(&HttpConfig::default()).unwrap().unwrap();
        assert!(matches!(
            r.read_body(head.content_length).unwrap_err(),
            RequestError::UnexpectedEof
        ));
    }
}
