//! # scales-faults
//!
//! An injectable failure plane for chaos-testing the SCALES serving
//! stack. Production code sprinkles named *fault points* — e.g.
//! `"runtime.dispatch"` before a batch is served, `"router.read"` around
//! an artifact read — and tests arm those points with a [`FaultAction`]:
//! a delay (slow worker), a panic (worker death mid-dispatch), or an
//! error (transient IO failure). The hooks are compiled in only when the
//! consuming crate enables its `faults` cargo feature, which the
//! workspace turns on for test builds alone; a release build never links
//! this crate.
//!
//! The registry is process-global so a test can reach faults buried
//! several crates below it. Two consequences follow:
//!
//! - The unarmed fast path is a single relaxed atomic load — cheap
//!   enough to leave in test binaries that never arm anything.
//! - Tests that arm faults must serialize among themselves (the harness
//!   runs `#[test]`s concurrently); the chaos suite does so with a
//!   shared mutex.
//!
//! ```
//! use scales_faults as faults;
//! use std::time::Duration;
//!
//! // Nothing armed: firing is a no-op.
//! assert_eq!(faults::fire("doc.point"), None);
//!
//! // Arm a one-shot delay; the guard disarms the point when dropped.
//! let guard = faults::arm_times("doc.point", faults::FaultAction::Delay(Duration::ZERO), 1);
//! assert_eq!(
//!     faults::fire("doc.point"),
//!     Some(faults::FaultAction::Delay(Duration::ZERO))
//! );
//! assert_eq!(faults::fire("doc.point"), None); // budget spent
//! assert_eq!(faults::hits("doc.point"), 2);
//! drop(guard);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// What an armed fault point does when execution reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Stall the caller for the given duration (slow worker, slow disk).
    Delay(Duration),
    /// Panic at the fault point (worker death mid-dispatch).
    Panic,
    /// Fail with the given message (transient IO error, decode failure).
    Error(String),
}

struct Plan {
    action: FaultAction,
    /// `None` fires forever; `Some(n)` fires `n` more times then goes quiet.
    remaining: Option<u64>,
}

#[derive(Default)]
struct Registry {
    plans: HashMap<&'static str, Plan>,
    hits: HashMap<&'static str, u64>,
}

/// Fast path: `false` means no point is armed anywhere, so [`fire`]
/// returns without touching the registry lock.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Disarms its fault point when dropped, so a panicking test cannot
/// leak an armed fault into the next one.
#[must_use = "dropping the guard immediately disarms the fault"]
#[derive(Debug)]
pub struct FaultGuard {
    point: &'static str,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm(self.point);
    }
}

/// Arm `point` to fire `action` on every hit until disarmed.
pub fn arm(point: &'static str, action: FaultAction) -> FaultGuard {
    install(point, action, None)
}

/// Arm `point` to fire `action` for the next `times` hits, then go quiet
/// (the point stays registered until the guard drops, but fires nothing).
pub fn arm_times(point: &'static str, action: FaultAction, times: u64) -> FaultGuard {
    install(point, action, Some(times))
}

fn install(point: &'static str, action: FaultAction, remaining: Option<u64>) -> FaultGuard {
    let mut reg = registry();
    reg.plans.insert(point, Plan { action, remaining });
    ARMED.store(true, Ordering::Release);
    FaultGuard { point }
}

/// Remove the plan for `point`; idempotent. Prefer letting the
/// [`FaultGuard`] do this.
pub fn disarm(point: &'static str) {
    let mut reg = registry();
    reg.plans.remove(point);
    if reg.plans.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
}

/// Forget every plan and hit counter. For test-suite hygiene between
/// scenarios that share the process.
pub fn reset() {
    let mut reg = registry();
    reg.plans.clear();
    reg.hits.clear();
    ARMED.store(false, Ordering::Release);
}

/// How many times [`fire`] evaluated `point` while *any* fault was
/// armed. Counts evaluations, not firings, so a retry loop's attempt
/// count is observable even after a limited plan goes quiet.
pub fn hits(point: &str) -> u64 {
    registry().hits.get(point).copied().unwrap_or(0)
}

/// Called by production code at a fault point. Returns the action to
/// perform, or `None` when the point is unarmed (or its budget is
/// spent). The caller interprets the action — this crate never sleeps or
/// panics on its own from `fire`.
pub fn fire(point: &'static str) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    let mut reg = registry();
    *reg.hits.entry(point).or_insert(0) += 1;
    let plan = reg.plans.get_mut(point)?;
    match &mut plan.remaining {
        None => Some(plan.action.clone()),
        Some(0) => None,
        Some(n) => {
            *n -= 1;
            Some(plan.action.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses unique point names: the registry is process-global
    // and the harness runs tests concurrently.

    #[test]
    fn unarmed_points_fire_nothing() {
        assert_eq!(fire("test.unarmed"), None);
        assert_eq!(hits("test.unarmed"), 0);
    }

    #[test]
    fn armed_point_fires_until_the_guard_drops() {
        let guard = arm("test.forever", FaultAction::Panic);
        assert_eq!(fire("test.forever"), Some(FaultAction::Panic));
        assert_eq!(fire("test.forever"), Some(FaultAction::Panic));
        drop(guard);
        assert_eq!(fire("test.forever"), None);
    }

    #[test]
    fn limited_plan_spends_its_budget_then_goes_quiet() {
        let _guard = arm_times("test.limited", FaultAction::Error("boom".into()), 2);
        assert_eq!(fire("test.limited"), Some(FaultAction::Error("boom".into())));
        assert_eq!(fire("test.limited"), Some(FaultAction::Error("boom".into())));
        assert_eq!(fire("test.limited"), None);
        // Evaluations keep counting after the budget is spent.
        assert!(hits("test.limited") >= 3);
    }

    #[test]
    fn rearming_replaces_the_plan() {
        let _guard = arm_times("test.rearm", FaultAction::Panic, 1);
        let _guard2 = arm("test.rearm", FaultAction::Delay(Duration::from_millis(1)));
        assert_eq!(
            fire("test.rearm"),
            Some(FaultAction::Delay(Duration::from_millis(1)))
        );
    }
}
