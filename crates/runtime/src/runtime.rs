//! [`Runtime`] — worker pool, bounded submission queue, and the
//! cross-request dynamic batcher, fronted by an SLO-aware admission
//! controller: per-tenant lanes drained by weighted round-robin,
//! earliest-deadline-first scheduling of deadline-tagged work, and
//! configurable load shedding.

use crate::metrics::{RuntimeStats, TenantStats, WorkerShard};
use crate::ticket::{Ticket, TicketCell};
use crate::{lock, wait, wait_timeout, RuntimeConfig};
use scales_data::Image;
use scales_serve::{Engine, InferStats, Session, SrRequest, SrResponse, TilePolicy};
use scales_telemetry::RuntimeStamps;
use scales_tensor::{Result, TensorError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a submission was not accepted. Backpressure is part of the API
/// contract: callers see a typed error the moment the runtime cannot take
/// more work, never silent queueing without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue already holds `capacity` requests. Retry later,
    /// or use [`Runtime::submit_wait`] to block for space.
    QueueFull {
        /// The configured queue bound
        /// ([`RuntimeConfig::queue_capacity`]).
        capacity: usize,
    },
    /// [`Runtime::shutdown`] has begun (or the runtime is being dropped):
    /// queued work drains, new work is refused.
    ShuttingDown,
    /// The request can never be served (empty, or an invalid per-request
    /// tile override) — rejected at submission rather than poisoning a
    /// coalesced dispatch later.
    InvalidRequest(String),
    /// [`Runtime::submit_wait_timeout`] ran out its deadline — either
    /// blocked on a full queue or waiting for the response. A timed-out
    /// request that was already accepted is still served eventually; its
    /// response is discarded at resolution.
    Timeout {
        /// The deadline the caller gave.
        timeout: std::time::Duration,
    },
    /// The request's tenant lane is at its configured queue quota
    /// ([`RuntimeConfig::tenant_quota`]). Other tenants may still have
    /// room; this one must retry later.
    TenantQuota {
        /// The tenant at its quota (`"default"` for untagged requests).
        tenant: String,
        /// The configured per-lane bound.
        quota: usize,
    },
    /// The request's deadline passed before it could be dispatched —
    /// refused at the door, or retracted from the queue by a worker.
    /// Expired requests are **never** dispatched.
    Expired,
    /// The configured [`ShedPolicy`](crate::ShedPolicy) tripped: the
    /// runtime is refusing work early to protect latency. Fail-fast even
    /// on the blocking submit paths.
    Shedding {
        /// Which trip wire fired.
        reason: &'static str,
    },
}

/// The admission-control verdict behind a refusal, for callers (like the
/// HTTP front end) that map families of [`SubmitError`]s to transport
/// statuses: retryable-by-this-caller ([`RejectReason::QueueFull`],
/// [`RejectReason::TenantQuota`] → `429`) versus server-side overload or
/// lateness ([`RejectReason::Shedding`] → `503`,
/// [`RejectReason::Expired`] → `504`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The shared queue is at capacity.
    QueueFull,
    /// The tenant's own lane is at its quota.
    TenantQuota,
    /// The request's deadline passed before dispatch.
    Expired,
    /// The shed policy is refusing work early.
    Shedding,
}

impl SubmitError {
    /// The admission verdict, when this error is one —
    /// `None` for [`ShuttingDown`](SubmitError::ShuttingDown),
    /// [`InvalidRequest`](SubmitError::InvalidRequest), and
    /// [`Timeout`](SubmitError::Timeout).
    #[must_use]
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            SubmitError::QueueFull { .. } => Some(RejectReason::QueueFull),
            SubmitError::TenantQuota { .. } => Some(RejectReason::TenantQuota),
            SubmitError::Expired => Some(RejectReason::Expired),
            SubmitError::Shedding { .. } => Some(RejectReason::Shedding),
            SubmitError::ShuttingDown
            | SubmitError::InvalidRequest(_)
            | SubmitError::Timeout { .. } => None,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "runtime queue is full ({capacity} requests queued)")
            }
            SubmitError::ShuttingDown => f.write_str("runtime is shutting down"),
            SubmitError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            SubmitError::Timeout { timeout } => {
                write!(f, "request was not served within {timeout:?}")
            }
            SubmitError::TenantQuota { tenant, quota } => {
                write!(f, "tenant {tenant:?} is at its queue quota ({quota} requests)")
            }
            SubmitError::Expired => {
                f.write_str("request deadline expired before it could be dispatched")
            }
            SubmitError::Shedding { reason } => {
                write!(f, "runtime is shedding load ({reason})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// How an *accepted* request finished: served, retracted before dispatch,
/// or failed in flight. This is what [`Ticket::wait`] returns on the
/// error side — the typed outcome contract that "every accepted ticket
/// resolves" promises.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The runtime retracted the request before dispatching it — today
    /// always [`SubmitError::Expired`] (the deadline passed while
    /// queued). Expired work is resolved immediately, never served late.
    Rejected(SubmitError),
    /// The dispatch ran and failed — the same error a serial
    /// `Session::infer` of this request would have produced (or the
    /// runtime lost its workers before serving it).
    Infer(TensorError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "request retracted before dispatch: {e}"),
            ServeError::Infer(e) => write!(f, "inference failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            ServeError::Infer(e) => Some(e),
        }
    }
}

/// One accepted request waiting in (or popped from) its tenant lane.
struct Entry {
    images: Vec<Image>,
    tile: Option<TilePolicy>,
    tenant: Option<Arc<str>>,
    deadline: Option<Instant>,
    cell: Arc<TicketCell>,
    enqueued: Instant,
    /// When a worker popped this entry from its lane (`None` while
    /// queued) — the boundary between the queue-wait and batch-wait
    /// trace stages.
    dequeued: Option<Instant>,
}

impl Entry {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// One tenant's FIFO queue plus its admission counters. Lanes are created
/// on the first **accepted** request of a tenant (or up front for
/// weighted tenants) and the table is bounded by
/// [`RuntimeConfig::max_tenant_lanes`] — tenant names are
/// client-controlled, so unbounded growth would let a hostile client
/// inflate memory, metrics cardinality, and scheduler scans. At the cap,
/// idle unweighted lanes are retired (counters folded into
/// [`QueueState::retired`]) to make room.
struct Lane {
    tenant: Option<Arc<str>>,
    weight: u32,
    /// Remaining dequeues in the current weighted-round-robin cycle.
    credits: u32,
    entries: VecDeque<Entry>,
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    shed: u64,
    quota_rejected: u64,
    expired: u64,
    deadline_misses: u64,
}

impl Lane {
    fn new(tenant: Option<Arc<str>>, weight: u32) -> Self {
        Self {
            tenant,
            weight,
            credits: 0,
            entries: VecDeque::new(),
            submitted: 0,
            completed: 0,
            failed: 0,
            rejected: 0,
            shed: 0,
            quota_rejected: 0,
            expired: 0,
            deadline_misses: 0,
        }
    }
}

/// Lane-attributed counters that feed the **global** totals. Every live
/// lane carries its own set; this aggregate absorbs the counts of retired
/// lanes and of refusals whose tenant never had a lane, so the global
/// arithmetic (`submitted == completed + failed + expired`, refusal
/// counters) stays exact no matter how the lane table churns.
#[derive(Debug, Default, Clone, Copy)]
struct LaneTotals {
    submitted: u64,
    rejected: u64,
    shed: u64,
    quota_rejected: u64,
    expired: u64,
    deadline_misses: u64,
}

/// Everything behind the queue mutex.
struct QueueState {
    lanes: Vec<Lane>,
    /// Entries across all lanes — the quantity bounded by
    /// `queue_capacity`.
    total_queued: usize,
    /// Where the weighted round-robin left off.
    rr_cursor: usize,
    shutting_down: bool,
    high_water: usize,
    /// Accepted requests failed without a dispatch (shutdown sweep, pool
    /// death) — folded into `RuntimeStats::failed` so
    /// `submitted == completed + failed + expired` holds at shutdown.
    failed_unserved: u64,
    /// Counters of retired lanes and of lane-less refusals (see
    /// [`LaneTotals`]).
    retired: LaneTotals,
}

impl QueueState {
    fn new(config: &RuntimeConfig) -> Self {
        // The anonymous lane plus one lane per weighted tenant, so
        // configured weights are visible in the stats from the start.
        let mut lanes = vec![Lane::new(None, 1)];
        for (name, weight) in &config.tenant_weights {
            lanes.push(Lane::new(Some(Arc::from(name.as_str())), *weight));
        }
        Self {
            lanes,
            total_queued: 0,
            rr_cursor: 0,
            shutting_down: false,
            high_water: 0,
            failed_unserved: 0,
            retired: LaneTotals::default(),
        }
    }
}

/// Index of the tenant's lane, when one exists. Refusal and accounting
/// paths use this instead of [`ensure_lane`] so a client-controlled
/// tenant name can only ever grow the lane table through **accepted**
/// work — a refused request must not cost the server a lane.
fn lane_index(st: &QueueState, tenant: Option<&str>) -> Option<usize> {
    st.lanes.iter().position(|l| l.tenant.as_deref() == tenant)
}

/// Whether a lane can be retired to make room at the cap: tagged, not
/// configured with a weight (weighted lanes are part of the stats
/// surface from spawn), nothing queued, and nothing in flight — the
/// counter identity `submitted == completed + failed + expired` holds
/// exactly when every accepted request of the lane has resolved.
fn evictable(lane: &Lane, config: &RuntimeConfig) -> bool {
    let Some(name) = lane.tenant.as_deref() else {
        return false;
    };
    lane.entries.is_empty()
        && lane.submitted == lane.completed + lane.failed + lane.expired
        && !config.tenant_weights.iter().any(|(weighted, _)| weighted == name)
}

/// Remove lane `i`, folding its globally-summed counters into
/// `st.retired` so the aggregate totals are unchanged (the per-tenant
/// series disappears — that cardinality bound is the point).
fn retire_lane(st: &mut QueueState, i: usize) {
    let lane = st.lanes.remove(i);
    debug_assert!(lane.entries.is_empty(), "retired lanes must be idle");
    st.retired.submitted += lane.submitted;
    st.retired.rejected += lane.rejected;
    st.retired.shed += lane.shed;
    st.retired.quota_rejected += lane.quota_rejected;
    st.retired.expired += lane.expired;
    st.retired.deadline_misses += lane.deadline_misses;
    if st.rr_cursor > i {
        st.rr_cursor -= 1;
    } else if st.rr_cursor >= st.lanes.len() {
        st.rr_cursor = 0;
    }
}

/// Find or create the lane for `tenant`, keeping the table bounded by
/// [`RuntimeConfig::max_tenant_lanes`]: at the cap, an idle unweighted
/// lane is retired to make room; when every tagged lane is weighted or
/// still has unresolved work, the request falls back to the **anonymous
/// lane** — served and counted, just without its own per-tenant series.
fn ensure_lane<'a>(
    st: &'a mut QueueState,
    tenant: Option<&str>,
    config: &RuntimeConfig,
) -> &'a mut Lane {
    if let Some(i) = lane_index(st, tenant) {
        return &mut st.lanes[i];
    }
    // `tenant` is tagged here: the anonymous lane always exists at 0.
    let tagged = st.lanes.iter().filter(|l| l.tenant.is_some()).count();
    if tagged >= config.max_tenant_lanes {
        match st.lanes.iter().position(|l| evictable(l, config)) {
            Some(idle) => retire_lane(st, idle),
            None => return &mut st.lanes[0],
        }
    }
    st.lanes.push(Lane::new(tenant.map(Arc::from), config.tenant_weight(tenant)));
    st.lanes.last_mut().expect("just pushed")
}

/// State shared between the handle and the workers.
struct Inner {
    engine: Engine<'static>,
    config: RuntimeConfig,
    state: Mutex<QueueState>,
    /// Signaled on enqueue and on shutdown: workers wait here.
    work: Condvar,
    /// Signaled on dequeue and on shutdown: [`Runtime::submit_wait`]
    /// blockers wait here.
    space: Condvar,
    /// One shard per worker; worker `w` only ever locks `shards[w]`.
    shards: Vec<Mutex<WorkerShard>>,
    /// Workers still running. When the last one dies *panicking* (a bug
    /// in a forward), its exit guard flips the pool to shutting-down and
    /// fails the queued tickets — a pool with no workers must refuse
    /// intake, not accept tickets nobody will ever resolve.
    alive: AtomicUsize,
    /// Observed p99 queue-to-response latency in nanoseconds over the
    /// sliding window of [`P99_WINDOW`] most recent resolutions,
    /// re-sampled by workers after every dispatch. The shed policy's p99
    /// trip wire reads this instead of sorting samples on the submit
    /// path.
    p99_ns: AtomicU64,
    /// When `p99_ns` was last refreshed, as nanoseconds since `started`.
    /// The trip wire uses this to detect a stale reading: once a trip
    /// drains the queue, no dispatches run to refresh the sample, so a
    /// reading older than [`ShedPolicy::p99_recovery`] re-arms admission
    /// instead of latching the outage permanently.
    ///
    /// [`ShedPolicy::p99_recovery`]: crate::ShedPolicy::p99_recovery
    p99_at_ns: AtomicU64,
    /// The sliding window of recent queue-to-response latencies (ns)
    /// behind `p99_ns`. Lock order: `state` before `recent`, never the
    /// reverse.
    recent: Mutex<VecDeque<u64>>,
    started: Instant,
}

/// Sliding-window size for the shed policy's p99 sample: large enough
/// that one unlucky dispatch cannot trip the wire, small enough that the
/// estimate tracks the current regime rather than the process lifetime.
const P99_WINDOW: usize = 256;

/// Nanoseconds since the runtime started, saturating (585 years of
/// uptime overflows u64 — not a case worth branching for).
fn elapsed_ns(inner: &Inner) -> u64 {
    u64::try_from(inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A running worker pool over one shared [`Engine`].
///
/// See the [crate docs](crate) for the lifecycle. The engine must be
/// `'static` (own its model) because workers are real threads; the
/// `&Engine: Send` bound this relies on is a compile-time contract of the
/// serving stack (see `engine_is_shareable_and_sessions_are_movable` in
/// `scales-serve`).
///
/// Dropping the runtime performs the same graceful drain-and-join as
/// [`Runtime::shutdown`], discarding the final stats.
pub struct Runtime {
    inner: Arc<Inner>,
    /// Drained by `shutdown`/`Drop`; empty means workers are already
    /// joined.
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Start `config.workers` worker threads over `engine`.
    ///
    /// Each worker opens its own [`Session`] — private planned-executor
    /// workspace, private per-shape plan cache — and serves every forward
    /// under the engine's backend handle
    /// ([`with_thread_backend`](scales_tensor::backend::with_thread_backend)),
    /// so a running pool neither reads nor writes the process-global
    /// backend selection.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid [`RuntimeConfig`] or when the OS
    /// refuses to spawn a worker thread.
    pub fn spawn(engine: Engine<'static>, config: RuntimeConfig) -> Result<Self> {
        config.validate()?;
        let workers = config.workers;
        let state = QueueState::new(&config);
        let inner = Arc::new(Inner {
            engine,
            config,
            state: Mutex::new(state),
            work: Condvar::new(),
            space: Condvar::new(),
            shards: (0..workers).map(|_| Mutex::new(WorkerShard::default())).collect(),
            alive: AtomicUsize::new(workers),
            p99_ns: AtomicU64::new(0),
            p99_at_ns: AtomicU64::new(0),
            recent: Mutex::new(VecDeque::with_capacity(P99_WINDOW)),
            started: Instant::now(),
        });
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("scales-runtime-{w}"))
                .spawn(move || worker_loop(&worker_inner, w));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Roll back the partial pool before reporting.
                    let partial = Runtime { inner, handles };
                    drop(partial);
                    return Err(TensorError::InvalidArgument(format!(
                        "failed to spawn runtime worker {w}: {e}"
                    )));
                }
            }
        }
        Ok(Self { inner, handles })
    }

    /// The engine the pool serves through.
    #[must_use]
    pub fn engine(&self) -> &Engine<'static> {
        &self.inner.engine
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// Enqueue a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::TenantQuota`] when the request's tenant lane is at
    /// its quota, [`SubmitError::Shedding`] while the shed policy is
    /// tripped, [`SubmitError::Expired`] for a deadline already passed,
    /// [`SubmitError::ShuttingDown`] after [`Runtime::shutdown`] begins,
    /// and [`SubmitError::InvalidRequest`] for a request that could never
    /// be served.
    pub fn submit(&self, request: SrRequest) -> std::result::Result<Ticket, SubmitError> {
        let parts = validate(request)?;
        let mut st = lock(&self.inner.state);
        self.admit(&mut st, &parts)?;
        let capacity = self.inner.config.queue_capacity;
        if st.total_queued >= capacity {
            sweep_expired(&self.inner, &mut st, Instant::now());
            if st.total_queued >= capacity {
                charge(&mut st, parts.tenant.as_deref(), |l| &mut l.rejected, |r| &mut r.rejected);
                return Err(SubmitError::QueueFull { capacity });
            }
        }
        Ok(self.enqueue(&mut st, parts))
    }

    /// Enqueue a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Everything [`Runtime::submit`] can return except
    /// [`SubmitError::QueueFull`] — a full queue blocks instead. The
    /// admission checks stay fail-fast while blocked: shedding, a tenant
    /// quota, a passed deadline, or shutdown refuse immediately rather
    /// than waiting out the overload.
    pub fn submit_wait(&self, request: SrRequest) -> std::result::Result<Ticket, SubmitError> {
        let parts = validate(request)?;
        let mut st = lock(&self.inner.state);
        loop {
            self.admit(&mut st, &parts)?;
            if st.total_queued >= self.inner.config.queue_capacity {
                sweep_expired(&self.inner, &mut st, Instant::now());
            }
            if st.total_queued < self.inner.config.queue_capacity {
                return Ok(self.enqueue(&mut st, parts));
            }
            st = wait(&self.inner.space, st);
        }
    }

    /// Submit and wait for the response, bounding the **whole** round
    /// trip — time blocked on a full queue plus time waiting for the
    /// ticket — by `timeout`. Built on [`Ticket::wait_timeout`]; this is
    /// the deadline-serving entry point network front ends use
    /// (`scales-http` maps each refusal family to its own status and
    /// `Retry-After`).
    ///
    /// The nested result separates the layers: the outer
    /// [`SubmitError`] is the runtime refusing, retracting, or timing out
    /// the request (including [`SubmitError::Expired`] when a
    /// [deadline-tagged](scales_serve::SrRequest::deadline_at) request
    /// expires while queued), the inner [`Result`] is the serving outcome
    /// exactly as a serial `Session::infer` would report it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Timeout`] when the deadline passes (whether still
    /// queued for space or already in flight — an in-flight request is
    /// still served eventually and its response discarded), plus
    /// everything [`Runtime::submit_wait`] can return.
    pub fn submit_wait_timeout(
        &self,
        request: SrRequest,
        timeout: std::time::Duration,
    ) -> std::result::Result<Result<SrResponse>, SubmitError> {
        let deadline = Instant::now() + timeout;
        let parts = validate(request)?;
        let ticket = {
            let mut st = lock(&self.inner.state);
            loop {
                self.admit(&mut st, &parts)?;
                if st.total_queued >= self.inner.config.queue_capacity {
                    sweep_expired(&self.inner, &mut st, Instant::now());
                }
                if st.total_queued < self.inner.config.queue_capacity {
                    break self.enqueue(&mut st, parts);
                }
                let now = Instant::now();
                if now >= deadline {
                    charge(
                        &mut st,
                        parts.tenant.as_deref(),
                        |l| &mut l.rejected,
                        |r| &mut r.rejected,
                    );
                    return Err(SubmitError::Timeout { timeout });
                }
                let (guard, _timed_out) = wait_timeout(&self.inner.space, st, deadline - now);
                st = guard;
            }
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        match ticket.wait_timeout(remaining) {
            Ok(Ok(response)) => Ok(Ok(response)),
            Ok(Err(ServeError::Infer(e))) => Ok(Err(e)),
            Ok(Err(ServeError::Rejected(e))) => Err(e),
            Err(still_pending) => {
                // The accepted request is still served eventually; mark
                // the cell so its resolution is counted as discarded
                // work (`RuntimeStats::late_discarded`).
                still_pending.cell.abandon();
                Err(SubmitError::Timeout { timeout })
            }
        }
    }

    /// The fail-fast admission checks shared by every submit path:
    /// shutdown, a passed deadline, the shed policy, and the tenant
    /// quota. Capacity is *not* checked here — the blocking paths wait it
    /// out instead. Refusals are charged to the tenant's **existing**
    /// lane or the retired aggregate ([`charge`]); a refused request
    /// never creates a lane.
    fn admit(
        &self,
        st: &mut QueueState,
        parts: &Admitted,
    ) -> std::result::Result<(), SubmitError> {
        let config = &self.inner.config;
        let tenant = parts.tenant.as_deref();
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if parts.deadline.is_some_and(|d| d <= Instant::now()) {
            charge(st, tenant, |l| &mut l.expired, |r| &mut r.expired);
            return Err(SubmitError::Expired);
        }
        // Before refusing for space, retract expired entries buried in
        // the lanes: dead work must not hold the shed watermark or a
        // tenant quota against live work.
        let queued = |st: &QueueState| lane_index(st, tenant).map_or(0, |i| st.lanes[i].entries.len());
        let watermark_hit = config.shed.queue_watermark.is_some_and(|mark| st.total_queued >= mark);
        let quota_hit = config.tenant_quota.is_some_and(|quota| queued(st) >= quota);
        if watermark_hit || quota_hit {
            sweep_expired(&self.inner, st, Instant::now());
        }
        if let Some(reason) = shed_reason(&self.inner, st) {
            charge(st, tenant, |l| &mut l.shed, |r| &mut r.shed);
            return Err(SubmitError::Shedding { reason });
        }
        if let Some(quota) = config.tenant_quota {
            // A tenant without a lane has nothing queued, so only an
            // existing lane can be at quota. (A tenant folded into the
            // anonymous lane at a busy lane cap shares *its* quota.)
            if let Some(i) = lane_index(st, tenant) {
                if st.lanes[i].entries.len() >= quota {
                    st.lanes[i].quota_rejected += 1;
                    return Err(SubmitError::TenantQuota {
                        tenant: parts.tenant.clone().unwrap_or_else(|| "default".into()),
                        quota,
                    });
                }
            }
        }
        Ok(())
    }

    /// Build the entry under the queue lock — `enqueued` is stamped here,
    /// the moment the request actually enters its lane (not when it was
    /// validated, which `submit_wait` can separate by a long block).
    fn enqueue(&self, st: &mut MutexGuard<'_, QueueState>, parts: Admitted) -> Ticket {
        let Admitted { images, tile, tenant, deadline } = parts;
        let cell = TicketCell::new();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        let lane = ensure_lane(st, tenant.as_deref(), &self.inner.config);
        lane.submitted += 1;
        lane.entries.push_back(Entry {
            images,
            tile,
            tenant: lane.tenant.clone(),
            deadline,
            cell,
            enqueued: Instant::now(),
            dequeued: None,
        });
        st.total_queued += 1;
        st.high_water = st.high_water.max(st.total_queued);
        self.inner.work.notify_one();
        ticket
    }

    /// Aggregate a live snapshot of the serving counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        snapshot(&self.inner)
    }

    /// Graceful shutdown: refuse new submissions, serve everything already
    /// queued, join the workers, and return the final stats. Every
    /// accepted ticket is resolved before this returns.
    #[must_use = "the final stats are the runtime's lifetime report; drop the runtime instead if you don't want them"]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        sweep_leftovers(&self.inner);
        snapshot(&self.inner)
    }

    fn begin_shutdown(&self) {
        let mut st = lock(&self.inner.state);
        st.shutting_down = true;
        drop(st);
        self.inner.work.notify_all();
        self.inner.space.notify_all();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return; // `shutdown` already joined the pool
        }
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        sweep_leftovers(&self.inner);
    }
}

/// Whether the shed policy refuses new work right now.
///
/// The p99 trip wire is self-recovering: a reading only refuses work
/// while it is fresher than [`ShedPolicy::p99_recovery`]. A trip that
/// succeeds in draining the queue stops all dispatches — nothing would
/// ever refresh the sample — so a stale over-trip reading is treated as
/// evidence the overload has passed, and the window is reset to re-arm
/// admission. A *real* ongoing overload keeps producing slow dispatches,
/// which keep the reading fresh and the wire tripped.
///
/// [`ShedPolicy::p99_recovery`]: crate::ShedPolicy::p99_recovery
fn shed_reason(inner: &Inner, st: &QueueState) -> Option<&'static str> {
    let policy = inner.config.shed;
    if policy.queue_watermark.is_some_and(|mark| st.total_queued >= mark) {
        return Some("queue depth watermark");
    }
    if let Some(trip) = policy.p99_trip {
        if u128::from(inner.p99_ns.load(Ordering::Relaxed)) > trip.as_nanos() {
            let age = elapsed_ns(inner).saturating_sub(inner.p99_at_ns.load(Ordering::Relaxed));
            if u128::from(age) <= policy.p99_recovery.as_nanos() {
                return Some("p99 latency trip wire");
            }
            // Stale over-trip reading: re-arm. Forgetting the window is
            // deliberate — those samples describe the regime that tripped
            // the wire, not the one this request is being admitted into.
            inner.p99_ns.store(0, Ordering::Relaxed);
            lock(&inner.recent).clear();
        }
    }
    None
}

/// After the workers are joined, resolve anything still queued. The drain
/// loop normally empties the lanes before the workers exit; entries can
/// only remain here if every worker died panicking, and even then no
/// accepted ticket may be left blocking forever.
fn sweep_leftovers(inner: &Inner) {
    let mut st = lock(&inner.state);
    fail_queued(
        &mut st,
        "runtime shut down before this request could be served",
    );
}

/// Fail every queued entry with `message`, keeping the per-lane and
/// unserved counters exact.
fn fail_queued(st: &mut QueueState, message: &str) {
    for lane in &mut st.lanes {
        while let Some(entry) = lane.entries.pop_front() {
            if entry.cell.resolve_if_pending(Err(ServeError::Infer(
                TensorError::InvalidArgument(message.into()),
            ))) {
                lane.failed += 1;
                st.failed_unserved += 1;
            }
            st.total_queued -= 1;
        }
    }
}

/// What survives request validation: the payload plus the admission
/// metadata (tenant tag, absolute deadline).
struct Admitted {
    images: Vec<Image>,
    tile: Option<TilePolicy>,
    tenant: Option<String>,
    deadline: Option<Instant>,
}

/// Reject requests that could never be served, so they cannot poison a
/// coalesced dispatch later: a degenerate payload must fail only its own
/// caller — with a typed error at submission — never the innocent
/// requests batched alongside it.
fn validate(request: SrRequest) -> std::result::Result<Admitted, SubmitError> {
    let tenant = request.tenant_tag().map(str::to_owned);
    if let Some(name) = &tenant {
        if !crate::config::valid_tenant_name(name) {
            return Err(SubmitError::InvalidRequest(format!(
                "tenant name {name:?} is invalid: 1-64 characters of [A-Za-z0-9._-]"
            )));
        }
    }
    let deadline = request.deadline();
    let (images, tile) = request.into_parts();
    if images.is_empty() {
        return Err(SubmitError::InvalidRequest(
            "inference request needs at least one image".into(),
        ));
    }
    for (i, img) in images.iter().enumerate() {
        if img.height() == 0 || img.width() == 0 {
            return Err(SubmitError::InvalidRequest(format!(
                "image {i} is zero-sized ({}x{})",
                img.height(),
                img.width()
            )));
        }
        // Every SR head in the zoo is a 3->C conv (and `Image` only
        // permits 1 or 3 channels), so non-RGB input is a guaranteed
        // forward error today. If a grayscale-serving model ever lands,
        // the expected channel count should move onto the engine/model
        // surface and be consulted here instead of this literal.
        if img.channels() != 3 {
            return Err(SubmitError::InvalidRequest(format!(
                "image {i} has {} channel(s); the SR networks serve RGB (3)",
                img.channels()
            )));
        }
    }
    if let Some(policy) = tile {
        policy.validate().map_err(|e| SubmitError::InvalidRequest(e.to_string()))?;
    }
    Ok(Admitted { images, tile, tenant, deadline })
}

fn worker_loop(inner: &Inner, worker: usize) {
    // On exit — normal (shutdown drain) or panic unwind — account for
    // this worker; the last one to die panicking closes the pool so
    // intake stops and nothing queued hangs forever.
    struct WorkerExit<'a> {
        inner: &'a Inner,
    }
    impl Drop for WorkerExit<'_> {
        fn drop(&mut self) {
            let was = self.inner.alive.fetch_sub(1, Ordering::SeqCst);
            if was == 1 && std::thread::panicking() {
                let mut st = lock(&self.inner.state);
                st.shutting_down = true;
                fail_queued(&mut st, "runtime has no live workers left (all panicked)");
                drop(st);
                self.inner.space.notify_all();
            }
        }
    }
    let _exit = WorkerExit { inner };
    let session = inner.engine.session();
    if inner.config.profile_ops {
        session.set_profiling(true);
    }
    while let Some(batch) = next_dispatch(inner) {
        // An entire gathered batch can expire during the straggler
        // window; there is nothing left to serve.
        if !batch.is_empty() {
            serve_dispatch(inner, worker, &session, batch);
        }
    }
}

/// Resolve and account every expired entry at the head of a lane. Expiry
/// is lazy — an expired entry buried behind live ones is retracted when
/// it surfaces at its lane head (or at the final pre-dispatch check) —
/// but an expired entry is *never* handed to a session.
fn expire_stale_heads(inner: &Inner, st: &mut QueueState, now: Instant) {
    let mut freed = false;
    for lane in &mut st.lanes {
        while lane.entries.front().is_some_and(|e| e.expired(now)) {
            let entry = lane.entries.pop_front().expect("front checked");
            entry.cell.resolve(Err(ServeError::Rejected(SubmitError::Expired)));
            lane.expired += 1;
            st.total_queued -= 1;
            freed = true;
        }
    }
    if freed {
        inner.space.notify_all();
    }
}

/// Retract every expired entry anywhere in the lanes — not just the
/// heads. Admission runs this when a refusal for *space* is on the table
/// (queue capacity, shed watermark, tenant quota), so dead entries buried
/// behind live ones cannot hold capacity against live work. Returns how
/// many entries were freed.
fn sweep_expired(inner: &Inner, st: &mut QueueState, now: Instant) -> usize {
    let mut freed = 0;
    for lane in &mut st.lanes {
        let Lane { ref mut entries, ref mut expired, .. } = *lane;
        entries.retain(|e| {
            if e.expired(now) {
                e.cell.resolve(Err(ServeError::Rejected(SubmitError::Expired)));
                *expired += 1;
                freed += 1;
                false
            } else {
                true
            }
        });
    }
    if freed > 0 {
        st.total_queued -= freed;
        inner.space.notify_all();
    }
    freed
}

/// Bump a per-tenant counter without creating a lane: the tenant's live
/// lane when one exists, the retired aggregate otherwise. Refusal paths
/// use this so a client-controlled tenant name cannot grow the lane
/// table without ever being admitted.
fn charge(
    st: &mut QueueState,
    tenant: Option<&str>,
    lane_counter: fn(&mut Lane) -> &mut u64,
    retired_counter: fn(&mut LaneTotals) -> &mut u64,
) {
    match lane_index(st, tenant) {
        Some(i) => *lane_counter(&mut st.lanes[i]) += 1,
        None => *retired_counter(&mut st.retired) += 1,
    }
}

/// The earliest deadline anywhere in the queue — the moment a sleeping
/// worker must wake to retract expired work promptly.
fn earliest_deadline(st: &QueueState) -> Option<Instant> {
    st.lanes
        .iter()
        .flat_map(|lane| lane.entries.iter().filter_map(|e| e.deadline))
        .min()
}

/// Pick the next entry to anchor a dispatch: earliest-deadline-first
/// *within* the weighted rotation — among lanes still holding credits
/// this cycle, a deadline-tagged head is drained before the cursor scan,
/// earliest first. FIFO order within a lane is never violated.
///
/// Bounding EDF by credits is what keeps deadlines from defeating
/// fairness: deadline tags order work inside a cycle but cannot buy more
/// than the lane's weight per cycle, so a tenant stamping every request
/// with a far-future deadline (the tag is client-controlled) still
/// cannot starve untagged tenants.
fn pop_next(inner: &Inner, st: &mut QueueState, now: Instant) -> Option<Entry> {
    expire_stale_heads(inner, st, now);
    if st.total_queued == 0 {
        return None;
    }
    // Weighted round-robin: when every backlogged lane is out of
    // credits, grant a fresh cycle (weight credits each).
    if !st.lanes.iter().any(|l| !l.entries.is_empty() && l.credits > 0) {
        for lane in &mut st.lanes {
            if !lane.entries.is_empty() {
                lane.credits = lane.weight;
            }
        }
    }
    // EDF among the credit-holding lanes: urgent work goes first within
    // the cycle, spending a credit like any other dispatch.
    let edf = st
        .lanes
        .iter()
        .enumerate()
        .filter(|(_, lane)| lane.credits > 0)
        .filter_map(|(i, lane)| lane.entries.front().and_then(|e| e.deadline).map(|d| (d, i)))
        .min_by_key(|&(d, _)| d);
    let i = match edf {
        Some((_, i)) => i,
        None => {
            // Scan from the cursor so a lane spends its credits
            // consecutively (coalescing-friendly).
            let n = st.lanes.len();
            (0..n)
                .map(|k| (st.rr_cursor + k) % n)
                .find(|&i| !st.lanes[i].entries.is_empty() && st.lanes[i].credits > 0)?
        }
    };
    st.lanes[i].credits -= 1;
    st.rr_cursor = i;
    let mut entry = st.lanes[i].entries.pop_front()?;
    entry.dequeued = Some(Instant::now());
    st.total_queued -= 1;
    Some(entry)
}

/// One fairness round over the lanes: take at most one compatible head
/// (same tile override, fits within `max_batch`) per lane. Returns
/// whether anything was taken.
fn gather_round(
    inner: &Inner,
    st: &mut QueueState,
    batch: &mut Vec<Entry>,
    images: &mut usize,
    now: Instant,
) -> bool {
    expire_stale_heads(inner, st, now);
    let max_batch = inner.config.max_batch;
    let tile = batch[0].tile;
    let mut took = false;
    let n = st.lanes.len();
    for k in 0..n {
        let i = (st.rr_cursor + k) % n;
        let compatible = st.lanes[i]
            .entries
            .front()
            .is_some_and(|e| e.tile == tile && *images + e.images.len() <= max_batch);
        if compatible {
            let mut entry = st.lanes[i].entries.pop_front().expect("front checked");
            entry.dequeued = Some(Instant::now());
            st.total_queued -= 1;
            *images += entry.images.len();
            batch.push(entry);
            inner.space.notify_all();
            took = true;
            if *images >= max_batch {
                break;
            }
        }
    }
    took
}

/// The cross-request dynamic batcher. Blocks for work (waking early to
/// retract expired entries), anchors a batch on the scheduler's pick,
/// then gathers compatible heads across the lanes — waiting up to
/// `max_wait` for stragglers while the queue is empty. Returns `None`
/// when the runtime is shutting down and the lanes are fully drained;
/// the returned batch can be empty when everything gathered expired
/// during the straggler window.
fn next_dispatch(inner: &Inner) -> Option<Vec<Entry>> {
    let mut st = lock(&inner.state);
    let first = loop {
        if let Some(entry) = pop_next(inner, &mut st, Instant::now()) {
            break entry;
        }
        if st.shutting_down {
            return None;
        }
        // Sleep until work arrives — or until the earliest queued
        // deadline passes, so expired entries are retracted promptly
        // instead of waiting for the next submission to wake a worker.
        st = match earliest_deadline(&st) {
            Some(d) => {
                let now = Instant::now();
                if d <= now {
                    continue;
                }
                wait_timeout(&inner.work, st, d - now).0
            }
            None => wait(&inner.work, st),
        };
    };
    inner.space.notify_all();
    let max_batch = inner.config.max_batch;
    let window = Instant::now() + inner.config.max_wait;
    let mut images = first.images.len();
    let mut batch = vec![first];
    loop {
        let took = gather_round(inner, &mut st, &mut batch, &mut images, Instant::now());
        // Dispatch when full or shutting down; when only incompatible
        // heads remain (never reorder around them within a lane), keep
        // gathering while rounds still make progress; otherwise wait out
        // the batching window for stragglers.
        if images >= max_batch || st.shutting_down {
            break;
        }
        if st.total_queued > 0 {
            if took {
                continue;
            }
            break;
        }
        let now = Instant::now();
        if now >= window {
            break;
        }
        let (guard, timed_out) = wait_timeout(&inner.work, st, window - now);
        st = guard;
        if timed_out {
            // One last gather below is pointless — the wait only returns
            // with the lock held, so the queue state is current.
            break;
        }
    }
    // The hard guarantee behind `SubmitError::Expired`: nothing expired
    // is ever dispatched. The straggler window can outlive a gathered
    // entry's deadline; retract those here, at the last moment before
    // the batch leaves the lock.
    let now = Instant::now();
    let mut kept = Vec::with_capacity(batch.len());
    for entry in batch {
        if entry.expired(now) {
            entry.cell.resolve(Err(ServeError::Rejected(SubmitError::Expired)));
            // In-flight entries pin their lane (see `evictable`), so this
            // finds it; `charge` keeps the totals exact regardless.
            charge(&mut st, entry.tenant.as_deref(), |l| &mut l.expired, |r| &mut r.expired);
        } else {
            kept.push(entry);
        }
    }
    // This worker may have consumed a submit's `notify_one` for an entry
    // it is deliberately leaving queued (incompatible tile override, or a
    // batch that would not fit). Re-signal so an idle worker picks it up
    // instead of waiting out this whole dispatch.
    if st.total_queued > 0 {
        inner.work.notify_one();
    }
    drop(st);
    Some(kept)
}

/// On unwind — a panic inside the forward path — resolve every
/// still-pending ticket of the dispatch with an error and account each
/// one as failed: the worker thread dies, but no caller is left blocked
/// forever and `stats.failed` stays exact (the rest of the pool keeps
/// serving).
struct ResolveOnPanic<'a> {
    inner: &'a Inner,
    entries: &'a [Entry],
}

impl Drop for ResolveOnPanic<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        // The panic came out of the forward path, so this thread holds
        // neither the state lock nor a shard lock here.
        let mut st = lock(&self.inner.state);
        for entry in self.entries {
            if entry.cell.resolve_if_pending(Err(ServeError::Infer(
                TensorError::InvalidArgument(
                    "runtime worker panicked while serving this dispatch".into(),
                ),
            ))) {
                // In-flight entries pin their lane (see `evictable`).
                if let Some(i) = lane_index(&st, entry.tenant.as_deref()) {
                    st.lanes[i].failed += 1;
                }
                st.failed_unserved += 1;
            }
        }
    }
}

/// The injectable failure hook on the dispatch path. Unarmed (and in
/// builds without the `faults` feature) this is free; armed, it can
/// stall the worker, kill it mid-dispatch, or substitute an inference
/// error — the raw material of the chaos suite.
#[cfg(feature = "faults")]
fn dispatch_fault() -> Option<TensorError> {
    match scales_faults::fire("runtime.dispatch")? {
        scales_faults::FaultAction::Delay(pause) => {
            std::thread::sleep(pause);
            None
        }
        scales_faults::FaultAction::Panic => panic!("injected fault: runtime.dispatch"),
        scales_faults::FaultAction::Error(message) => {
            Some(TensorError::InvalidArgument(format!("injected fault: {message}")))
        }
    }
}

#[cfg(not(feature = "faults"))]
fn dispatch_fault() -> Option<TensorError> {
    None
}

/// Serve one coalesced batch through the worker's session and hand every
/// caller its own slice of the response.
fn serve_dispatch(inner: &Inner, worker: usize, session: &Session<'_, 'static>, batch: Vec<Entry>) {
    let counts: Vec<usize> = batch.iter().map(|e| e.images.len()).collect();
    let total: usize = counts.iter().sum();
    let mut combined = Vec::with_capacity(total);
    let mut entries = batch;
    for entry in &mut entries {
        combined.append(&mut entry.images);
    }
    let _panic_guard = ResolveOnPanic { inner, entries: &entries };
    let mut request = SrRequest::batch(combined);
    if let Some(policy) = entries[0].tile {
        request = request.tile_policy(policy);
    }
    let served_at = Instant::now();
    let result = match dispatch_fault() {
        Some(injected) => Err(injected),
        None => session.infer(request),
    };
    let infer_done = Instant::now();
    let busy = infer_done.saturating_duration_since(served_at);

    let mut shard = lock(&inner.shards[worker]);
    shard.dispatches += 1;
    shard.busy += busy;
    // Re-sample (not accumulate): capacity only ever grows, so the latest
    // reading is this worker's current resident footprint.
    shard.workspace_bytes = session.workspace_bytes();
    if entries.len() > 1 {
        shard.coalesced += entries.len() as u64;
    }
    let served_ok = result.is_ok();
    let mut sampled = Vec::with_capacity(entries.len());
    match result {
        Ok(response) => {
            // Per-caller stats: own image count; the shared dispatch's
            // execution breakdown (batches/tiled/plan counters) otherwise.
            let stats = response.stats();
            let mut images = response.into_images().into_iter();
            for (entry, n) in entries.iter().zip(counts) {
                let own: Vec<Image> = images.by_ref().take(n).collect();
                debug_assert_eq!(own.len(), n, "response images must cover the dispatch");
                shard.completed += 1;
                shard.images += n as u64;
                let latency = entry.enqueued.elapsed();
                shard.latency.record(latency);
                sampled.push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                let stamps = record_stages(&mut shard, entry, served_at, infer_done);
                entry.cell.resolve(Ok(SrResponse::from_parts(
                    own,
                    InferStats { images: n, ..stats },
                )
                .with_stamps(stamps)));
            }
        }
        Err(e) => {
            // The whole dispatch failed. Degenerate payloads were already
            // rejected at submission, so this is a systemic failure (the
            // engine/model itself) that a serial `Session::infer` of each
            // coalesced request would also have hit; every caller sees
            // that error.
            for entry in &entries {
                shard.failed += 1;
                let latency = entry.enqueued.elapsed();
                shard.latency.record(latency);
                sampled.push(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                let _ = record_stages(&mut shard, entry, served_at, infer_done);
                entry.cell.resolve(Err(ServeError::Infer(e.clone())));
            }
        }
    }
    // Re-sample like `workspace_bytes`: the session profile is
    // cumulative, so the latest reading supersedes the previous one.
    if inner.config.profile_ops {
        shard.op_profile = session.op_profile();
    }
    drop(shard);

    // Per-tenant accounting happens post-dispatch under one brief state
    // lock: completions, failures, and deadline misses (served, but after
    // the deadline passed mid-flight — the late-but-served counterpart of
    // the never-dispatched `Expired`). In-flight entries pin their lane
    // (see `evictable`), so the lookup always lands.
    let resolved_at = Instant::now();
    let mut st = lock(&inner.state);
    for entry in &entries {
        let Some(i) = lane_index(&st, entry.tenant.as_deref()) else {
            continue;
        };
        let lane = &mut st.lanes[i];
        if served_ok {
            lane.completed += 1;
            if entry.deadline.is_some_and(|d| resolved_at > d) {
                lane.deadline_misses += 1;
            }
        } else {
            lane.failed += 1;
        }
    }
    drop(st);
    note_latencies(inner, &sampled);
}

/// Record one served entry's stage spans into the worker's shard and
/// return the stamps attached to its response: queue wait (enqueue →
/// pop), batch wait (pop → batch sealed), and the forward span shared by
/// the whole coalesced dispatch. An abandoned cell — the submitter's
/// `submit_wait_timeout` gave up mid-flight — is counted as
/// late-discarded work here, at the resolution it never reads.
fn record_stages(
    shard: &mut WorkerShard,
    entry: &Entry,
    sealed: Instant,
    infer_done: Instant,
) -> RuntimeStamps {
    let dequeued = entry.dequeued.unwrap_or(entry.enqueued);
    shard.queue_wait.record(dequeued.saturating_duration_since(entry.enqueued));
    shard.batch_wait.record(sealed.saturating_duration_since(dequeued));
    shard.infer.record(infer_done.saturating_duration_since(sealed));
    if entry.cell.is_abandoned() {
        shard.late_discarded += 1;
    }
    RuntimeStamps { enqueued: entry.enqueued, dequeued, sealed, infer_done }
}

/// Fold this dispatch's queue-to-response latencies into the sliding
/// window and re-sample its p99 into the shared cache the shed policy's
/// trip wire reads. Windowed — not lifetime-cumulative — so the estimate
/// can come back down when the overload passes.
fn note_latencies(inner: &Inner, sampled: &[u64]) {
    let mut recent = lock(&inner.recent);
    for &ns in sampled {
        if recent.len() == P99_WINDOW {
            recent.pop_front();
        }
        recent.push_back(ns);
    }
    let mut sorted: Vec<u64> = recent.iter().copied().collect();
    drop(recent);
    if sorted.is_empty() {
        return;
    }
    sorted.sort_unstable();
    let rank = (sorted.len() * 99).div_ceil(100).max(1);
    inner.p99_ns.store(sorted[rank - 1], Ordering::Relaxed);
    inner.p99_at_ns.store(elapsed_ns(inner), Ordering::Relaxed);
}

fn snapshot(inner: &Inner) -> RuntimeStats {
    let st = lock(&inner.state);
    let queue_depth = st.total_queued;
    let queue_high_water = st.high_water;
    let failed_unserved = st.failed_unserved;
    // Seed the global sums with the retired aggregate so retiring a lane
    // (or refusing a lane-less tenant) never loses a count.
    let mut submitted = st.retired.submitted;
    let mut rejected = st.retired.rejected;
    let mut shed = st.retired.shed;
    let mut quota_rejected = st.retired.quota_rejected;
    let mut expired = st.retired.expired;
    let mut deadline_misses = st.retired.deadline_misses;
    let mut tenants = Vec::new();
    for lane in &st.lanes {
        submitted += lane.submitted;
        rejected += lane.rejected;
        shed += lane.shed;
        quota_rejected += lane.quota_rejected;
        expired += lane.expired;
        deadline_misses += lane.deadline_misses;
        if let Some(name) = &lane.tenant {
            tenants.push(TenantStats {
                tenant: name.to_string(),
                weight: lane.weight,
                queued: lane.entries.len(),
                submitted: lane.submitted,
                completed: lane.completed,
                failed: lane.failed,
                rejected: lane.rejected,
                shed: lane.shed,
                quota_rejected: lane.quota_rejected,
                expired: lane.expired,
                deadline_misses: lane.deadline_misses,
            });
        }
    }
    drop(st);
    tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    let mut agg = WorkerShard::default();
    for shard in &inner.shards {
        agg.merge(&lock(shard));
    }
    #[allow(clippy::cast_precision_loss)]
    let batch_fill = if agg.dispatches == 0 {
        0.0
    } else {
        agg.images as f64 / (agg.dispatches * inner.config.max_batch as u64) as f64
    };
    RuntimeStats {
        workers: inner.config.workers,
        backend: inner.engine.backend(),
        simd: inner.engine.backend().kernel().simd_level(),
        max_batch: inner.config.max_batch,
        submitted,
        rejected,
        shed,
        quota_rejected,
        expired,
        deadline_misses,
        completed: agg.completed,
        failed: agg.failed + failed_unserved,
        images: agg.images,
        dispatches: agg.dispatches,
        coalesced: agg.coalesced,
        queue_depth,
        queue_high_water,
        workspace_bytes: agg.workspace_bytes,
        batch_fill,
        busy: agg.busy,
        elapsed: inner.started.elapsed(),
        latency: agg.latency,
        queue_wait: agg.queue_wait,
        batch_wait: agg.batch_wait,
        infer: agg.infer,
        late_discarded: agg.late_discarded,
        op_profile: agg.op_profile,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;
    use scales_models::{srresnet, SrConfig};
    use scales_serve::Precision;

    fn small_engine() -> Engine<'static> {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 97,
        })
        .unwrap();
        Engine::builder().model(net).precision(Precision::Deployed).build().unwrap()
    }

    fn probe(h: usize, w: usize, seed: u64) -> Image {
        scales_data::synth::scene(
            h,
            w,
            scales_data::synth::SceneConfig::default(),
            &mut scales_nn::init::rng(seed),
        )
    }

    #[test]
    fn runtime_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Runtime>();
        assert_send_sync::<Ticket>();
    }

    #[test]
    fn serves_a_request_and_reports_stats() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let response =
            runtime.submit(SrRequest::single(probe(8, 8, 1))).unwrap().wait().unwrap();
        assert_eq!(response.images().len(), 1);
        assert_eq!(response.images()[0].height(), 16);
        assert_eq!(response.stats().images, 1);
        // Runtime responses carry the stage stamps, in timeline order.
        let stamps = response.stamps().expect("runtime responses carry stage stamps");
        assert!(stamps.enqueued <= stamps.dequeued);
        assert!(stamps.dequeued <= stamps.sealed);
        assert!(stamps.sealed <= stamps.infer_done);
        let stats = runtime.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.images, 1);
        assert_eq!(stats.dispatches, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.latency.count(), 1);
        assert!(stats.latency.p99() > std::time::Duration::ZERO);
        // Every served request lands in all three stage histograms.
        assert_eq!(stats.queue_wait.count(), 1);
        assert_eq!(stats.batch_wait.count(), 1);
        assert_eq!(stats.infer.count(), 1);
        assert!(stats.infer.max() > std::time::Duration::ZERO);
        assert_eq!(stats.late_discarded, 0);
        assert!(stats.op_profile.is_empty(), "profiling is opt-in");
    }

    #[test]
    fn invalid_requests_are_rejected_at_submission() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let empty = runtime.submit(SrRequest::batch(vec![])).unwrap_err();
        assert!(matches!(empty, SubmitError::InvalidRequest(_)), "{empty}");
        let bad_tile = runtime
            .submit(SrRequest::single(probe(8, 8, 2)).tile_policy(TilePolicy::Fixed(
                scales_serve::TileSpec { tile: 0, overlap: 0 },
            )))
            .unwrap_err();
        assert!(matches!(bad_tile, SubmitError::InvalidRequest(_)), "{bad_tile}");
        // Degenerate payloads must fail their own caller at submission —
        // they can never reach (and poison) a coalesced dispatch.
        let zero_sized = runtime.submit(SrRequest::single(Image::zeros(0, 0))).unwrap_err();
        assert!(matches!(zero_sized, SubmitError::InvalidRequest(_)), "{zero_sized}");
        let gray = Image::from_tensor(scales_tensor::Tensor::zeros(&[1, 8, 8])).unwrap();
        let not_rgb = runtime.submit(SrRequest::single(gray)).unwrap_err();
        assert!(matches!(not_rgb, SubmitError::InvalidRequest(_)), "{not_rgb}");
        // A malformed tenant tag is a validation error, not a new lane.
        let bad_tenant = runtime
            .submit(SrRequest::single(probe(8, 8, 5)).tenant("not a tenant!"))
            .unwrap_err();
        assert!(matches!(bad_tenant, SubmitError::InvalidRequest(_)), "{bad_tenant}");
        let stats = runtime.shutdown();
        assert_eq!(stats.submitted, 0, "rejected requests never enter the queue");
    }

    #[test]
    fn submit_wait_timeout_round_trips_and_times_out() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        // A served request comes back through the nested result.
        let response = runtime
            .submit_wait_timeout(
                SrRequest::single(probe(8, 8, 40)),
                std::time::Duration::from_secs(120),
            )
            .expect("accepted")
            .expect("served");
        assert_eq!(response.images()[0].height(), 16);
        // Validation errors surface exactly as in `submit`.
        let err = runtime
            .submit_wait_timeout(SrRequest::batch(vec![]), std::time::Duration::from_secs(1))
            .err()
            .expect("empty request must be rejected");
        assert!(matches!(err, SubmitError::InvalidRequest(_)), "{err}");
        // A zero deadline on a queue that still has space accepts the
        // request but cannot wait for it: typed timeout, and the request
        // is still served (discarded) rather than leaked.
        let err = runtime
            .submit_wait_timeout(
                SrRequest::single(probe(8, 8, 41)),
                std::time::Duration::ZERO,
            )
            .err()
            .expect("a zero deadline must time out");
        assert_eq!(err, SubmitError::Timeout { timeout: std::time::Duration::ZERO });
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 2, "the timed-out request was still served");
        assert_eq!(
            stats.late_discarded, 1,
            "the abandoned response is counted as discarded work"
        );
    }

    #[test]
    fn profile_ops_samples_worker_sessions() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, profile_ops: true, ..RuntimeConfig::default() },
        )
        .unwrap();
        let _ = runtime.submit(SrRequest::single(probe(8, 8, 90))).unwrap().wait().unwrap();
        let stats = runtime.shutdown();
        assert!(!stats.op_profile.is_empty(), "profiling was enabled");
        assert!(stats.op_profile.total_ns() > 0);
        let kinds: Vec<&str> = stats.op_profile.entries().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"body_conv"), "{kinds:?}");
        // Attributed op time lies strictly inside the forward wall time.
        assert!(
            stats.op_profile.total_ns() <= u64::try_from(stats.busy.as_nanos()).unwrap_or(u64::MAX)
        );
    }

    #[test]
    fn submit_wait_timeout_expires_while_blocked_for_queue_space() {
        // One worker wedged on a slow-ish dispatch + capacity 1 keeps the
        // queue full long enough for a short space-wait to expire.
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 1,
                max_wait: std::time::Duration::ZERO,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // Big enough to keep the single worker busy for a beat.
        let busy: Vec<Ticket> = (0..4)
            .filter_map(|i| runtime.submit(SrRequest::single(probe(48, 48, 50 + i))).ok())
            .collect();
        let mut saw_timeout = false;
        for i in 0..50 {
            match runtime.submit_wait_timeout(
                SrRequest::single(probe(8, 8, 60 + i)),
                std::time::Duration::from_micros(50),
            ) {
                Err(SubmitError::Timeout { .. }) => {
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
                Ok(_) => {}
            }
        }
        assert!(saw_timeout, "a 50 µs deadline against a wedged queue must expire");
        for ticket in busy {
            let _ = ticket.wait();
        }
        let _ = runtime.shutdown();
    }

    #[test]
    fn submit_error_display_is_exhaustive() {
        // Every variant renders a non-empty, variant-specific message —
        // the `scales-io` error-surface discipline applied to the
        // runtime's error type (and `source()` stays None: these are
        // leaf errors).
        let cases: Vec<(SubmitError, &str)> = vec![
            (SubmitError::QueueFull { capacity: 7 }, "full (7"),
            (SubmitError::ShuttingDown, "shutting down"),
            (SubmitError::InvalidRequest("zero-sized".into()), "invalid request: zero-sized"),
            (
                SubmitError::Timeout { timeout: std::time::Duration::from_millis(250) },
                "not served within 250ms",
            ),
            (
                SubmitError::TenantQuota { tenant: "acme".into(), quota: 3 },
                "\"acme\" is at its queue quota (3",
            ),
            (SubmitError::Expired, "deadline expired"),
            (SubmitError::Shedding { reason: "queue depth watermark" }, "shedding load"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{err:?} renders {text:?}, wanted {needle:?}");
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_none(), "{err:?} is a leaf error");
        }
    }

    #[test]
    fn reject_reason_classifies_the_admission_refusals() {
        assert_eq!(
            SubmitError::QueueFull { capacity: 1 }.reject_reason(),
            Some(RejectReason::QueueFull)
        );
        assert_eq!(
            SubmitError::TenantQuota { tenant: "a".into(), quota: 1 }.reject_reason(),
            Some(RejectReason::TenantQuota)
        );
        assert_eq!(SubmitError::Expired.reject_reason(), Some(RejectReason::Expired));
        assert_eq!(
            SubmitError::Shedding { reason: "x" }.reject_reason(),
            Some(RejectReason::Shedding)
        );
        assert_eq!(SubmitError::ShuttingDown.reject_reason(), None);
        assert_eq!(SubmitError::InvalidRequest(String::new()).reject_reason(), None);
        assert_eq!(
            SubmitError::Timeout { timeout: std::time::Duration::ZERO }.reject_reason(),
            None
        );
    }

    #[test]
    fn serve_error_display_and_sources_are_wired() {
        let rejected = ServeError::Rejected(SubmitError::Expired);
        assert!(rejected.to_string().contains("retracted"), "{rejected}");
        let infer = ServeError::Infer(TensorError::InvalidArgument("boom".into()));
        assert!(infer.to_string().contains("inference failed"), "{infer}");
        for err in [rejected, infer] {
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_some(), "{err:?} wraps its cause");
        }
    }

    #[test]
    fn already_expired_deadlines_are_refused_at_the_door() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let err = runtime
            .submit(SrRequest::single(probe(8, 8, 70)).deadline_at(Instant::now()))
            .unwrap_err();
        assert_eq!(err, SubmitError::Expired);
        let err = runtime
            .submit_wait(
                SrRequest::single(probe(8, 8, 71))
                    .deadline_in(std::time::Duration::ZERO),
            )
            .unwrap_err();
        assert_eq!(err, SubmitError::Expired);
        let stats = runtime.shutdown();
        assert_eq!(stats.submitted, 0, "expired requests never enter the queue");
        assert_eq!(stats.expired, 2);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn submitting_after_shutdown_is_a_typed_error() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        runtime.begin_shutdown();
        let err = runtime.submit(SrRequest::single(probe(8, 8, 3))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        let err = runtime.submit_wait(SrRequest::single(probe(8, 8, 4))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        let _ = runtime.shutdown();
    }

    #[test]
    fn invalid_config_is_rejected() {
        let err =
            Runtime::spawn(small_engine(), RuntimeConfig { workers: 0, ..RuntimeConfig::default() });
        assert!(err.is_err());
    }

    #[test]
    fn drop_without_shutdown_drains_and_joins() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 2, ..RuntimeConfig::default() },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| runtime.submit(SrRequest::single(probe(8, 8, 10 + i))).unwrap())
            .collect();
        drop(runtime);
        // Every accepted ticket resolves even though nobody called
        // `shutdown` — drop drains the queue before joining.
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }
}
