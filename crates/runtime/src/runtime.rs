//! [`Runtime`] — worker pool, bounded submission queue, and the
//! cross-request dynamic batcher.

use crate::metrics::{RuntimeStats, WorkerShard};
use crate::ticket::{Ticket, TicketCell};
use crate::{lock, wait, wait_timeout, RuntimeConfig};
use scales_data::Image;
use scales_serve::{Engine, InferStats, Session, SrRequest, SrResponse, TilePolicy};
use scales_tensor::{Result, TensorError};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why a submission was not accepted. Backpressure is part of the API
/// contract: callers see a typed error the moment the runtime cannot take
/// more work, never silent queueing without bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue already holds `capacity` requests. Retry later,
    /// or use [`Runtime::submit_wait`] to block for space.
    QueueFull {
        /// The configured queue bound
        /// ([`RuntimeConfig::queue_capacity`]).
        capacity: usize,
    },
    /// [`Runtime::shutdown`] has begun (or the runtime is being dropped):
    /// queued work drains, new work is refused.
    ShuttingDown,
    /// The request can never be served (empty, or an invalid per-request
    /// tile override) — rejected at submission rather than poisoning a
    /// coalesced dispatch later.
    InvalidRequest(String),
    /// [`Runtime::submit_wait_timeout`] ran out its deadline — either
    /// blocked on a full queue or waiting for the response. A timed-out
    /// request that was already accepted is still served eventually; its
    /// response is discarded at resolution.
    Timeout {
        /// The deadline the caller gave.
        timeout: std::time::Duration,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "runtime queue is full ({capacity} requests queued)")
            }
            SubmitError::ShuttingDown => f.write_str("runtime is shutting down"),
            SubmitError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            SubmitError::Timeout { timeout } => {
                write!(f, "request was not served within {timeout:?}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// One accepted request waiting in (or popped from) the queue.
struct Entry {
    images: Vec<Image>,
    tile: Option<TilePolicy>,
    cell: Arc<TicketCell>,
    enqueued: Instant,
}

/// Everything behind the queue mutex.
struct QueueState {
    queue: VecDeque<Entry>,
    shutting_down: bool,
    submitted: u64,
    rejected: u64,
    high_water: usize,
}

/// State shared between the handle and the workers.
struct Inner {
    engine: Engine<'static>,
    config: RuntimeConfig,
    state: Mutex<QueueState>,
    /// Signaled on enqueue and on shutdown: workers wait here.
    work: Condvar,
    /// Signaled on dequeue and on shutdown: [`Runtime::submit_wait`]
    /// blockers wait here.
    space: Condvar,
    /// One shard per worker; worker `w` only ever locks `shards[w]`.
    shards: Vec<Mutex<WorkerShard>>,
    /// Workers still running. When the last one dies *panicking* (a bug
    /// in a forward), its exit guard flips the pool to shutting-down and
    /// fails the queued tickets — a pool with no workers must refuse
    /// intake, not accept tickets nobody will ever resolve.
    alive: std::sync::atomic::AtomicUsize,
    started: Instant,
}

/// A running worker pool over one shared [`Engine`].
///
/// See the [crate docs](crate) for the lifecycle. The engine must be
/// `'static` (own its model) because workers are real threads; the
/// `&Engine: Send` bound this relies on is a compile-time contract of the
/// serving stack (see `engine_is_shareable_and_sessions_are_movable` in
/// `scales-serve`).
///
/// Dropping the runtime performs the same graceful drain-and-join as
/// [`Runtime::shutdown`], discarding the final stats.
pub struct Runtime {
    inner: Arc<Inner>,
    /// Drained by `shutdown`/`Drop`; empty means workers are already
    /// joined.
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Start `config.workers` worker threads over `engine`.
    ///
    /// Each worker opens its own [`Session`] — private planned-executor
    /// workspace, private per-shape plan cache — and serves every forward
    /// under the engine's backend handle
    /// ([`with_thread_backend`](scales_tensor::backend::with_thread_backend)),
    /// so a running pool neither reads nor writes the process-global
    /// backend selection.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid [`RuntimeConfig`] or when the OS
    /// refuses to spawn a worker thread.
    pub fn spawn(engine: Engine<'static>, config: RuntimeConfig) -> Result<Self> {
        config.validate()?;
        let inner = Arc::new(Inner {
            engine,
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_capacity),
                shutting_down: false,
                submitted: 0,
                rejected: 0,
                high_water: 0,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            shards: (0..config.workers).map(|_| Mutex::new(WorkerShard::default())).collect(),
            alive: std::sync::atomic::AtomicUsize::new(config.workers),
            started: Instant::now(),
        });
        let mut handles = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("scales-runtime-{w}"))
                .spawn(move || worker_loop(&worker_inner, w));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Roll back the partial pool before reporting.
                    let partial = Runtime { inner, handles };
                    drop(partial);
                    return Err(TensorError::InvalidArgument(format!(
                        "failed to spawn runtime worker {w}: {e}"
                    )));
                }
            }
        }
        Ok(Self { inner, handles })
    }

    /// The engine the pool serves through.
    #[must_use]
    pub fn engine(&self) -> &Engine<'static> {
        &self.inner.engine
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// Enqueue a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`Runtime::shutdown`] begins,
    /// and [`SubmitError::InvalidRequest`] for a request that could never
    /// be served.
    pub fn submit(&self, request: SrRequest) -> std::result::Result<Ticket, SubmitError> {
        let (images, tile) = validate(request)?;
        let mut st = lock(&self.inner.state);
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.inner.config.queue_capacity {
            st.rejected += 1;
            return Err(SubmitError::QueueFull { capacity: self.inner.config.queue_capacity });
        }
        Ok(self.enqueue(&mut st, images, tile))
    }

    /// Enqueue a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] (including while blocked) and
    /// [`SubmitError::InvalidRequest`]; never
    /// [`SubmitError::QueueFull`].
    pub fn submit_wait(&self, request: SrRequest) -> std::result::Result<Ticket, SubmitError> {
        let (images, tile) = validate(request)?;
        let mut st = lock(&self.inner.state);
        loop {
            if st.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queue.len() < self.inner.config.queue_capacity {
                return Ok(self.enqueue(&mut st, images, tile));
            }
            st = wait(&self.inner.space, st);
        }
    }

    /// Submit and wait for the response, bounding the **whole** round
    /// trip — time blocked on a full queue plus time waiting for the
    /// ticket — by `timeout`. Built on [`Ticket::wait_timeout`]; this is
    /// the deadline-serving entry point network front ends use
    /// (`scales-http` returns `503 Service Unavailable` from it instead
    /// of holding a connection open forever).
    ///
    /// The nested result separates the layers: the outer
    /// [`SubmitError`] is the runtime refusing or timing out the request,
    /// the inner [`Result`] is the serving outcome exactly as
    /// [`Ticket::wait`] would report it.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Timeout`] when the deadline passes (whether still
    /// queued for space or already in flight — an in-flight request is
    /// still served eventually and its response discarded), plus
    /// everything [`Runtime::submit_wait`] can return.
    pub fn submit_wait_timeout(
        &self,
        request: SrRequest,
        timeout: std::time::Duration,
    ) -> std::result::Result<Result<SrResponse>, SubmitError> {
        let deadline = Instant::now() + timeout;
        let (images, tile) = validate(request)?;
        let ticket = {
            let mut st = lock(&self.inner.state);
            loop {
                if st.shutting_down {
                    return Err(SubmitError::ShuttingDown);
                }
                if st.queue.len() < self.inner.config.queue_capacity {
                    break self.enqueue(&mut st, images, tile);
                }
                let now = Instant::now();
                if now >= deadline {
                    st.rejected += 1;
                    return Err(SubmitError::Timeout { timeout });
                }
                let (guard, _timed_out) = wait_timeout(&self.inner.space, st, deadline - now);
                st = guard;
            }
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        match ticket.wait_timeout(remaining) {
            Ok(result) => Ok(result),
            Err(_still_pending) => Err(SubmitError::Timeout { timeout }),
        }
    }

    /// Build the entry under the queue lock — `enqueued` is stamped here,
    /// the moment the request actually enters the queue (not when it was
    /// validated, which `submit_wait` can separate by a long block).
    fn enqueue(
        &self,
        st: &mut MutexGuard<'_, QueueState>,
        images: Vec<Image>,
        tile: Option<TilePolicy>,
    ) -> Ticket {
        let entry =
            Entry { images, tile, cell: TicketCell::new(), enqueued: Instant::now() };
        let ticket = Ticket { cell: Arc::clone(&entry.cell) };
        st.submitted += 1;
        st.queue.push_back(entry);
        st.high_water = st.high_water.max(st.queue.len());
        self.inner.work.notify_one();
        ticket
    }

    /// Aggregate a live snapshot of the serving counters.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        snapshot(&self.inner)
    }

    /// Graceful shutdown: refuse new submissions, serve everything already
    /// queued, join the workers, and return the final stats. Every
    /// accepted ticket is resolved before this returns.
    #[must_use = "the final stats are the runtime's lifetime report; drop the runtime instead if you don't want them"]
    pub fn shutdown(mut self) -> RuntimeStats {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        sweep_leftovers(&self.inner);
        snapshot(&self.inner)
    }

    fn begin_shutdown(&self) {
        let mut st = lock(&self.inner.state);
        st.shutting_down = true;
        drop(st);
        self.inner.work.notify_all();
        self.inner.space.notify_all();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return; // `shutdown` already joined the pool
        }
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        sweep_leftovers(&self.inner);
    }
}

/// After the workers are joined, resolve anything still queued. The drain
/// loop normally empties the queue before the workers exit; entries can
/// only remain here if every worker died panicking, and even then no
/// accepted ticket may be left blocking forever.
fn sweep_leftovers(inner: &Inner) {
    let mut st = lock(&inner.state);
    while let Some(entry) = st.queue.pop_front() {
        entry.cell.resolve_if_pending(Err(TensorError::InvalidArgument(
            "runtime shut down before this request could be served".into(),
        )));
    }
}

/// Reject requests that could never be served, so they cannot poison a
/// coalesced dispatch later: a degenerate payload must fail only its own
/// caller — with a typed error at submission — never the innocent
/// requests batched alongside it.
type ValidParts = (Vec<Image>, Option<TilePolicy>);

fn validate(request: SrRequest) -> std::result::Result<ValidParts, SubmitError> {
    let (images, tile) = request.into_parts();
    if images.is_empty() {
        return Err(SubmitError::InvalidRequest(
            "inference request needs at least one image".into(),
        ));
    }
    for (i, img) in images.iter().enumerate() {
        if img.height() == 0 || img.width() == 0 {
            return Err(SubmitError::InvalidRequest(format!(
                "image {i} is zero-sized ({}x{})",
                img.height(),
                img.width()
            )));
        }
        // Every SR head in the zoo is a 3->C conv (and `Image` only
        // permits 1 or 3 channels), so non-RGB input is a guaranteed
        // forward error today. If a grayscale-serving model ever lands,
        // the expected channel count should move onto the engine/model
        // surface and be consulted here instead of this literal.
        if img.channels() != 3 {
            return Err(SubmitError::InvalidRequest(format!(
                "image {i} has {} channel(s); the SR networks serve RGB (3)",
                img.channels()
            )));
        }
    }
    if let Some(policy) = tile {
        policy.validate().map_err(|e| SubmitError::InvalidRequest(e.to_string()))?;
    }
    Ok((images, tile))
}

fn worker_loop(inner: &Inner, worker: usize) {
    // On exit — normal (shutdown drain) or panic unwind — account for
    // this worker; the last one to die panicking closes the pool so
    // intake stops and nothing queued hangs forever.
    struct WorkerExit<'a> {
        inner: &'a Inner,
    }
    impl Drop for WorkerExit<'_> {
        fn drop(&mut self) {
            let was = self.inner.alive.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            if was == 1 && std::thread::panicking() {
                let mut st = lock(&self.inner.state);
                st.shutting_down = true;
                while let Some(entry) = st.queue.pop_front() {
                    entry.cell.resolve_if_pending(Err(TensorError::InvalidArgument(
                        "runtime has no live workers left (all panicked)".into(),
                    )));
                }
                drop(st);
                self.inner.space.notify_all();
            }
        }
    }
    let _exit = WorkerExit { inner };
    let session = inner.engine.session();
    while let Some(batch) = next_dispatch(inner) {
        serve_dispatch(inner, worker, &session, batch);
    }
}

/// The cross-request dynamic batcher. Blocks for work, then gathers
/// **consecutive** compatible requests from the queue front — same tile
/// override, fitting within `max_batch` images — waiting up to `max_wait`
/// for stragglers while the queue is empty. Returns `None` when the
/// runtime is shutting down and the queue is fully drained.
fn next_dispatch(inner: &Inner) -> Option<Vec<Entry>> {
    let mut st = lock(&inner.state);
    let first = loop {
        if let Some(entry) = st.queue.pop_front() {
            break entry;
        }
        if st.shutting_down {
            return None;
        }
        st = wait(&inner.work, st);
    };
    inner.space.notify_all();
    let max_batch = inner.config.max_batch;
    let deadline = Instant::now() + inner.config.max_wait;
    let mut images = first.images.len();
    let mut batch = vec![first];
    loop {
        // Take compatible entries off the front while they fit.
        while images < max_batch {
            let compatible = st
                .queue
                .front()
                .is_some_and(|e| e.tile == batch[0].tile && images + e.images.len() <= max_batch);
            if !compatible {
                break;
            }
            let entry = st.queue.pop_front().expect("front checked");
            images += entry.images.len();
            batch.push(entry);
            inner.space.notify_all();
        }
        // Dispatch when full, when an incompatible request heads the
        // queue (never reorder around it), on shutdown, or when the
        // batching window closes.
        if images >= max_batch || !st.queue.is_empty() || st.shutting_down {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (guard, timed_out) = wait_timeout(&inner.work, st, deadline - now);
        st = guard;
        if timed_out {
            // One last gather below is pointless — the wait only returns
            // with the lock held, so the queue state is current.
            break;
        }
    }
    // This worker may have consumed a submit's `notify_one` for an entry
    // it is deliberately leaving queued (incompatible tile override, or a
    // batch that would not fit). Re-signal so an idle worker picks it up
    // instead of waiting out this whole dispatch.
    if !st.queue.is_empty() {
        inner.work.notify_one();
    }
    drop(st);
    Some(batch)
}

/// On unwind — a panic inside the forward path — resolve every
/// still-pending ticket of the dispatch with an error: the worker thread
/// dies, but no caller is left blocked forever (the rest of the pool
/// keeps serving).
struct ResolveOnPanic<'a> {
    entries: &'a [Entry],
}

impl Drop for ResolveOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            for entry in self.entries {
                entry.cell.resolve_if_pending(Err(TensorError::InvalidArgument(
                    "runtime worker panicked while serving this dispatch".into(),
                )));
            }
        }
    }
}

/// Serve one coalesced batch through the worker's session and hand every
/// caller its own slice of the response.
fn serve_dispatch(inner: &Inner, worker: usize, session: &Session<'_, 'static>, batch: Vec<Entry>) {
    let counts: Vec<usize> = batch.iter().map(|e| e.images.len()).collect();
    let total: usize = counts.iter().sum();
    let mut combined = Vec::with_capacity(total);
    let mut entries = batch;
    for entry in &mut entries {
        combined.append(&mut entry.images);
    }
    let _panic_guard = ResolveOnPanic { entries: &entries };
    let mut request = SrRequest::batch(combined);
    if let Some(policy) = entries[0].tile {
        request = request.tile_policy(policy);
    }
    let served_at = Instant::now();
    let result = session.infer(request);
    let busy = served_at.elapsed();

    let mut shard = lock(&inner.shards[worker]);
    shard.dispatches += 1;
    shard.busy += busy;
    // Re-sample (not accumulate): capacity only ever grows, so the latest
    // reading is this worker's current resident footprint.
    shard.workspace_bytes = session.workspace_bytes();
    if entries.len() > 1 {
        shard.coalesced += entries.len() as u64;
    }
    match result {
        Ok(response) => {
            // Per-caller stats: own image count; the shared dispatch's
            // execution breakdown (batches/tiled/plan counters) otherwise.
            let stats = response.stats();
            let mut images = response.into_images().into_iter();
            for (entry, n) in entries.iter().zip(counts) {
                let own: Vec<Image> = images.by_ref().take(n).collect();
                debug_assert_eq!(own.len(), n, "response images must cover the dispatch");
                shard.completed += 1;
                shard.images += n as u64;
                shard.latency.record(entry.enqueued.elapsed());
                entry
                    .cell
                    .resolve(Ok(SrResponse::from_parts(own, InferStats { images: n, ..stats })));
            }
        }
        Err(e) => {
            // The whole dispatch failed. Degenerate payloads were already
            // rejected at submission, so this is a systemic failure (the
            // engine/model itself) that a serial `Session::infer` of each
            // coalesced request would also have hit; every caller sees
            // that error.
            for entry in &entries {
                shard.failed += 1;
                shard.latency.record(entry.enqueued.elapsed());
                entry.cell.resolve(Err(e.clone()));
            }
        }
    }
}

fn snapshot(inner: &Inner) -> RuntimeStats {
    let (queue_depth, queue_high_water, submitted, rejected) = {
        let st = lock(&inner.state);
        (st.queue.len(), st.high_water, st.submitted, st.rejected)
    };
    let mut agg = WorkerShard::default();
    for shard in &inner.shards {
        agg.merge(&lock(shard));
    }
    #[allow(clippy::cast_precision_loss)]
    let batch_fill = if agg.dispatches == 0 {
        0.0
    } else {
        agg.images as f64 / (agg.dispatches * inner.config.max_batch as u64) as f64
    };
    RuntimeStats {
        workers: inner.config.workers,
        backend: inner.engine.backend(),
        simd: inner.engine.backend().kernel().simd_level(),
        max_batch: inner.config.max_batch,
        submitted,
        rejected,
        completed: agg.completed,
        failed: agg.failed,
        images: agg.images,
        dispatches: agg.dispatches,
        coalesced: agg.coalesced,
        queue_depth,
        queue_high_water,
        workspace_bytes: agg.workspace_bytes,
        batch_fill,
        busy: agg.busy,
        elapsed: inner.started.elapsed(),
        latency: agg.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scales_core::Method;
    use scales_models::{srresnet, SrConfig};
    use scales_serve::Precision;

    fn small_engine() -> Engine<'static> {
        let net = srresnet(SrConfig {
            channels: 8,
            blocks: 1,
            scale: 2,
            method: Method::scales(),
            seed: 97,
        })
        .unwrap();
        Engine::builder().model(net).precision(Precision::Deployed).build().unwrap()
    }

    fn probe(h: usize, w: usize, seed: u64) -> Image {
        scales_data::synth::scene(
            h,
            w,
            scales_data::synth::SceneConfig::default(),
            &mut scales_nn::init::rng(seed),
        )
    }

    #[test]
    fn runtime_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Runtime>();
        assert_send_sync::<Ticket>();
    }

    #[test]
    fn serves_a_request_and_reports_stats() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let response =
            runtime.submit(SrRequest::single(probe(8, 8, 1))).unwrap().wait().unwrap();
        assert_eq!(response.images().len(), 1);
        assert_eq!(response.images()[0].height(), 16);
        assert_eq!(response.stats().images, 1);
        let stats = runtime.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.images, 1);
        assert_eq!(stats.dispatches, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.latency.count(), 1);
        assert!(stats.latency.p99() > std::time::Duration::ZERO);
    }

    #[test]
    fn invalid_requests_are_rejected_at_submission() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        let empty = runtime.submit(SrRequest::batch(vec![])).unwrap_err();
        assert!(matches!(empty, SubmitError::InvalidRequest(_)), "{empty}");
        let bad_tile = runtime
            .submit(SrRequest::single(probe(8, 8, 2)).tile_policy(TilePolicy::Fixed(
                scales_serve::TileSpec { tile: 0, overlap: 0 },
            )))
            .unwrap_err();
        assert!(matches!(bad_tile, SubmitError::InvalidRequest(_)), "{bad_tile}");
        // Degenerate payloads must fail their own caller at submission —
        // they can never reach (and poison) a coalesced dispatch.
        let zero_sized = runtime.submit(SrRequest::single(Image::zeros(0, 0))).unwrap_err();
        assert!(matches!(zero_sized, SubmitError::InvalidRequest(_)), "{zero_sized}");
        let gray = Image::from_tensor(scales_tensor::Tensor::zeros(&[1, 8, 8])).unwrap();
        let not_rgb = runtime.submit(SrRequest::single(gray)).unwrap_err();
        assert!(matches!(not_rgb, SubmitError::InvalidRequest(_)), "{not_rgb}");
        let stats = runtime.shutdown();
        assert_eq!(stats.submitted, 0, "rejected requests never enter the queue");
    }

    #[test]
    fn submit_wait_timeout_round_trips_and_times_out() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        // A served request comes back through the nested result.
        let response = runtime
            .submit_wait_timeout(
                SrRequest::single(probe(8, 8, 40)),
                std::time::Duration::from_secs(120),
            )
            .expect("accepted")
            .expect("served");
        assert_eq!(response.images()[0].height(), 16);
        // Validation errors surface exactly as in `submit`.
        let err = runtime
            .submit_wait_timeout(SrRequest::batch(vec![]), std::time::Duration::from_secs(1))
            .err()
            .expect("empty request must be rejected");
        assert!(matches!(err, SubmitError::InvalidRequest(_)), "{err}");
        // A zero deadline on a queue that still has space accepts the
        // request but cannot wait for it: typed timeout, and the request
        // is still served (discarded) rather than leaked.
        let err = runtime
            .submit_wait_timeout(
                SrRequest::single(probe(8, 8, 41)),
                std::time::Duration::ZERO,
            )
            .err()
            .expect("a zero deadline must time out");
        assert_eq!(err, SubmitError::Timeout { timeout: std::time::Duration::ZERO });
        let stats = runtime.shutdown();
        assert_eq!(stats.completed, 2, "the timed-out request was still served");
    }

    #[test]
    fn submit_wait_timeout_expires_while_blocked_for_queue_space() {
        // One worker wedged on a slow-ish dispatch + capacity 1 keeps the
        // queue full long enough for a short space-wait to expire.
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig {
                workers: 1,
                queue_capacity: 1,
                max_batch: 1,
                max_wait: std::time::Duration::ZERO,
            },
        )
        .unwrap();
        // Big enough to keep the single worker busy for a beat.
        let busy: Vec<Ticket> = (0..4)
            .filter_map(|i| runtime.submit(SrRequest::single(probe(48, 48, 50 + i))).ok())
            .collect();
        let mut saw_timeout = false;
        for i in 0..50 {
            match runtime.submit_wait_timeout(
                SrRequest::single(probe(8, 8, 60 + i)),
                std::time::Duration::from_micros(50),
            ) {
                Err(SubmitError::Timeout { .. }) => {
                    saw_timeout = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
                Ok(_) => {}
            }
        }
        assert!(saw_timeout, "a 50 µs deadline against a wedged queue must expire");
        for ticket in busy {
            let _ = ticket.wait();
        }
        let _ = runtime.shutdown();
    }

    #[test]
    fn submit_error_display_is_exhaustive() {
        // Every variant renders a non-empty, variant-specific message —
        // the `scales-io` error-surface discipline applied to the
        // runtime's error type (and `source()` stays None: these are
        // leaf errors).
        let cases: Vec<(SubmitError, &str)> = vec![
            (SubmitError::QueueFull { capacity: 7 }, "full (7"),
            (SubmitError::ShuttingDown, "shutting down"),
            (SubmitError::InvalidRequest("zero-sized".into()), "invalid request: zero-sized"),
            (
                SubmitError::Timeout { timeout: std::time::Duration::from_millis(250) },
                "not served within 250ms",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{err:?} renders {text:?}, wanted {needle:?}");
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_none(), "{err:?} is a leaf error");
        }
    }

    #[test]
    fn submitting_after_shutdown_is_a_typed_error() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 1, ..RuntimeConfig::default() },
        )
        .unwrap();
        runtime.begin_shutdown();
        let err = runtime.submit(SrRequest::single(probe(8, 8, 3))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        let err = runtime.submit_wait(SrRequest::single(probe(8, 8, 4))).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
        let _ = runtime.shutdown();
    }

    #[test]
    fn invalid_config_is_rejected() {
        let err =
            Runtime::spawn(small_engine(), RuntimeConfig { workers: 0, ..RuntimeConfig::default() });
        assert!(err.is_err());
    }

    #[test]
    fn drop_without_shutdown_drains_and_joins() {
        let runtime = Runtime::spawn(
            small_engine(),
            RuntimeConfig { workers: 2, ..RuntimeConfig::default() },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| runtime.submit(SrRequest::single(probe(8, 8, 10 + i))).unwrap())
            .collect();
        drop(runtime);
        // Every accepted ticket resolves even though nobody called
        // `shutdown` — drop drains the queue before joining.
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }
}
