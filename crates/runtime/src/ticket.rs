//! [`Ticket`] — the caller's handle to an in-flight request: a hand-rolled
//! `Mutex` + `Condvar` one-shot cell resolved exactly once by the worker
//! that serves the request.

use crate::runtime::ServeError;
use crate::{lock, wait_timeout};
use scales_serve::SrResponse;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a ticket resolves: the response, or a typed [`ServeError`].
pub(crate) type ServeResult = Result<SrResponse, ServeError>;

/// The shared one-shot cell between a submitted request and the worker
/// that eventually serves it.
pub(crate) struct TicketCell {
    slot: Mutex<Option<ServeResult>>,
    done: Condvar,
    /// The submitter gave up waiting (a `submit_wait_timeout` deadline
    /// ran out in flight). The request is still served — the guarantee
    /// that every accepted ticket resolves is unconditional — but the
    /// worker counts the resolution as late-discarded work.
    abandoned: AtomicBool,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            done: Condvar::new(),
            abandoned: AtomicBool::new(false),
        })
    }

    /// Mark that nobody is waiting on this cell anymore.
    pub(crate) fn abandon(&self) {
        self.abandoned.store(true, Ordering::Relaxed);
    }

    /// Whether the submitter gave up before resolution.
    pub(crate) fn is_abandoned(&self) -> bool {
        self.abandoned.load(Ordering::Relaxed)
    }

    /// Deliver the result, waking the waiting caller. Called exactly once
    /// per cell, by the worker that served (or failed) the request.
    pub(crate) fn resolve(&self, result: ServeResult) {
        let mut slot = lock(&self.slot);
        debug_assert!(slot.is_none(), "a ticket resolves exactly once");
        *slot = Some(result);
        self.done.notify_all();
    }

    /// Deliver `result` only if nothing was delivered yet — the
    /// last-resort path (worker panic unwind, post-join shutdown sweep)
    /// that guarantees no accepted ticket is ever left blocking forever.
    /// Returns whether this call resolved the cell, so those paths can
    /// account the requests they failed.
    pub(crate) fn resolve_if_pending(&self, result: ServeResult) -> bool {
        let mut slot = lock(&self.slot);
        let resolved = slot.is_none();
        if resolved {
            *slot = Some(result);
            self.done.notify_all();
        }
        resolved
    }
}

/// A claim on the response to one submitted request.
///
/// Returned by [`Runtime::submit`](crate::Runtime::submit) /
/// [`Runtime::submit_wait`](crate::Runtime::submit_wait). The ticket is
/// the *only* handle to the result: [`Ticket::wait`] consumes it and
/// returns the caller's own [`SrResponse`] — the images of the submitted
/// request, in the submitted order, even when the runtime served them
/// coalesced with other callers' work.
///
/// Every accepted request is eventually resolved: workers drain the queue
/// on shutdown, a failed dispatch resolves its tickets with the error
/// instead of dropping them, and a queued request whose deadline passes
/// resolves with [`ServeError::Rejected`] instead of being served late.
pub struct Ticket {
    pub(crate) cell: Arc<TicketCell>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("ready", &self.is_ready()).finish()
    }
}

impl Ticket {
    /// Block until the request is served and take the response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Infer`] carries the error the serving dispatch
    /// produced, exactly as a serial `Session::infer` of this request
    /// would have; [`ServeError::Rejected`] means the runtime retracted
    /// the accepted request before dispatch (deadline expiry).
    pub fn wait(self) -> ServeResult {
        let mut slot = lock(&self.cell.slot);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = crate::wait(&self.cell.done, slot);
        }
    }

    /// Block up to `timeout` for the response. On timeout the ticket is
    /// handed back so the caller can keep waiting (or drop it — the
    /// runtime still serves the request; the response is discarded at
    /// resolution).
    ///
    /// # Errors
    ///
    /// `Err(self)` on timeout; the inner `Result` is as in
    /// [`Ticket::wait`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResult, Ticket> {
        let deadline = Instant::now() + timeout;
        let mut slot = lock(&self.cell.slot);
        loop {
            if let Some(result) = slot.take() {
                return Ok(result);
            }
            let now = Instant::now();
            if now >= deadline {
                drop(slot);
                return Err(self);
            }
            let (guard, _timed_out) = wait_timeout(&self.cell.done, slot, deadline - now);
            slot = guard;
        }
    }

    /// Whether the response has already been delivered (a subsequent
    /// [`Ticket::wait`] will not block).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        lock(&self.cell.slot).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SubmitError;
    use scales_serve::{InferStats, Precision, SrResponse};
    use scales_tensor::backend::Backend;

    fn empty_response() -> SrResponse {
        SrResponse::from_parts(
            Vec::new(),
            InferStats {
                images: 0,
                batches: 0,
                tiled: 0,
                backend: Backend::Scalar,
                simd: scales_tensor::SimdLevel::None,
                precision: Precision::Deployed,
                plans_built: 0,
                plan_reuses: 0,
            },
        )
    }

    #[test]
    fn resolved_ticket_returns_without_blocking() {
        let cell = TicketCell::new();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        assert!(!ticket.is_ready());
        cell.resolve(Ok(empty_response()));
        assert!(ticket.is_ready());
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn wait_blocks_until_a_thread_resolves() {
        let cell = TicketCell::new();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            cell.resolve(Ok(empty_response()));
        });
        assert!(ticket.wait().is_ok());
        resolver.join().unwrap();
    }

    #[test]
    fn wait_timeout_hands_the_ticket_back() {
        let cell = TicketCell::new();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        let Err(ticket) = ticket.wait_timeout(Duration::from_millis(5)) else {
            panic!("unresolved ticket must time out");
        };
        cell.resolve(Ok(empty_response()));
        assert!(ticket.wait_timeout(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn abandonment_is_sticky_and_never_blocks_resolution() {
        let cell = TicketCell::new();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        assert!(!cell.is_abandoned());
        cell.abandon();
        assert!(cell.is_abandoned());
        // An abandoned cell still resolves normally — the flag only
        // tells the resolver nobody will read the result.
        cell.resolve(Ok(empty_response()));
        assert!(ticket.wait().is_ok());
    }

    #[test]
    fn resolve_if_pending_reports_whether_it_won() {
        let cell = TicketCell::new();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        assert!(cell.resolve_if_pending(Err(ServeError::Rejected(SubmitError::Expired))));
        assert!(!cell.resolve_if_pending(Ok(empty_response())));
        // The first resolution sticks.
        assert!(matches!(
            ticket.wait(),
            Err(ServeError::Rejected(SubmitError::Expired))
        ));
    }
}
