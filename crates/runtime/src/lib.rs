//! # scales-runtime
//!
//! The concurrent serving runtime of the SCALES reproduction: a
//! hand-rolled, std-only worker pool that turns one single-caller
//! [`Engine`](scales_serve::Engine) into a multi-tenant server — bounded
//! submission queue with explicit backpressure, cross-request dynamic
//! batching, and a mutex-sharded [`metrics`] subsystem. No external
//! dependencies, no async executor: plain threads, a `Mutex` + two
//! `Condvar`s for the queue, and a `Mutex` + `Condvar` one-shot per
//! in-flight request.
//!
//! The lifecycle is:
//!
//! 1. [`Runtime::spawn`] takes ownership of an `Engine<'static>` and
//!    starts `workers` threads. Each worker owns a private
//!    [`Session`](scales_serve::Session) — its own planned-executor
//!    workspace and per-shape plan cache — and every forward runs under
//!    the engine's backend handle (thread-scoped, never the process
//!    global).
//! 2. [`Runtime::submit`] enqueues an [`SrRequest`](scales_serve::SrRequest)
//!    and returns a [`Ticket`] immediately; a full queue is a typed
//!    [`SubmitError::QueueFull`], a stopped runtime is
//!    [`SubmitError::ShuttingDown`]. [`Runtime::submit_wait`] blocks for
//!    space instead.
//! 3. Workers run the **dynamic batcher**: after popping a request they
//!    gather further compatible queued requests — same per-request tile
//!    override, up to [`max_batch`](RuntimeConfig::max_batch) images —
//!    waiting up to [`max_wait`](RuntimeConfig::max_wait) for stragglers,
//!    then serve the coalesced set through **one** `Session::infer` call.
//!    Same-shaped images across callers share one planned forward (the
//!    session's shape-bucketed micro-batching), so many small single-image
//!    callers amortize dispatch, plan lookup, and GEMM setup.
//! 4. Each caller's [`Ticket`] resolves to its own
//!    [`SrResponse`](scales_serve::SrResponse) — the images of *its*
//!    request, in *its* order, bit-identical (`f32::to_bits`) to what a
//!    serial `Session::infer` of that request alone would produce
//!    (enforced by `tests/runtime.rs` across the CNN method registry and
//!    both backends).
//! 5. [`Runtime::shutdown`] stops intake, drains every queued request,
//!    joins the workers, and returns the final [`RuntimeStats`] —
//!    throughput, queue high-water, batch fill ratio, and p50/p99 latency
//!    from fixed-bucket histograms. Dropping a `Runtime` does the same
//!    drain-and-join without the stats.
//!
//! ## Admission control
//!
//! On top of the bounded queue the runtime runs an SLO-aware admission
//! controller, configured through [`RuntimeConfig`]:
//!
//! - **Deadlines** — a request tagged with
//!   [`SrRequest::deadline_in`](scales_serve::SrRequest::deadline_in) is
//!   refused at the door ([`SubmitError::Expired`]) when already late,
//!   retracted from the queue instead of being dispatched late
//!   ([`ServeError::Rejected`]), and scheduled earliest-deadline-first
//!   *within* the weighted rotation — deadline tags order work inside a
//!   fairness cycle but cannot buy more than the lane's weight per cycle
//!   (the tag is client-controlled).
//! - **Per-tenant fairness** — each
//!   [`SrRequest::tenant`](scales_serve::SrRequest::tenant) tag gets its
//!   own queue lane, drained by weighted round-robin
//!   ([`RuntimeConfig::tenant_weights`]) with an optional per-lane quota
//!   ([`RuntimeConfig::tenant_quota`], refusing with
//!   [`SubmitError::TenantQuota`]). The lane table is bounded
//!   ([`RuntimeConfig::max_tenant_lanes`]): idle unweighted lanes are
//!   retired at the cap (their counters folded into the global totals),
//!   and a refused request never creates a lane, so untrusted tenant
//!   names cannot grow server state. Per-lane counters surface as
//!   [`TenantStats`].
//! - **Load shedding** — a [`ShedPolicy`] refuses work early
//!   ([`SubmitError::Shedding`]) on a queue-depth watermark or while the
//!   p99 latency over a sliding window of recent dispatches exceeds a
//!   trip wire; a tripped wire re-arms once its reading goes stale
//!   ([`ShedPolicy::p99_recovery`]), so a transient spike cannot latch
//!   into a permanent outage.
//!
//! Every refusal is typed; [`SubmitError::reject_reason`] classifies the
//! admission refusals into a [`RejectReason`] so serving front ends can
//! map them onto distinct wire responses (429 vs 503 vs 504).
//!
//! With the `faults` feature (test builds only) the worker dispatch path
//! evaluates the `scales-faults` registry (`"runtime.dispatch"`), so
//! chaos tests can inject delays, errors, and panics inside a live pool.
//!
//! ```
//! use scales_runtime::{Runtime, RuntimeConfig};
//! use scales_serve::{Engine, Precision, SrRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # use scales_models::{srresnet, SrConfig};
//! # use scales_core::Method;
//! let net = srresnet(SrConfig { channels: 8, blocks: 1, scale: 2, method: Method::scales(), seed: 1 })?;
//! let engine = Engine::builder().model(net).precision(Precision::Deployed).build()?;
//! let runtime = Runtime::spawn(engine, RuntimeConfig { workers: 2, ..RuntimeConfig::default() })?;
//! let lr = scales_data::Image::zeros(8, 8);
//! let ticket = runtime.submit(SrRequest::single(lr))?; // non-blocking
//! let sr = ticket.wait()?;                             // caller's own response
//! assert_eq!(sr.images()[0].height(), 16);
//! let stats = runtime.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok(())
//! # }
//! ```

mod config;
pub mod metrics;
mod runtime;
mod ticket;

pub use config::{RuntimeConfig, ShedPolicy};
pub use metrics::{LatencyHistogram, RuntimeStats, TenantStats};
pub use runtime::{RejectReason, Runtime, ServeError, SubmitError};
pub use ticket::Ticket;

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Poison-tolerant lock: a worker that panicked mid-dispatch must not
/// deadlock or re-panic the rest of the pool (shutdown still drains and
/// joins).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant condvar wait.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant condvar wait with a timeout; returns the guard and
/// whether the wait timed out.
pub(crate) fn wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}
