//! The runtime's observability subsystem: mutex-sharded per-worker
//! counters, fixed-bucket latency histograms, and the aggregated
//! [`RuntimeStats`] snapshot.
//!
//! Counters are **sharded, not shared**: each worker owns one private
//! shard behind its own `Mutex` and touches nothing else on the hot
//! path, so recording a dispatch is an uncontended lock — "lock-free
//! -ish" without atomics gymnastics. Only [`Runtime::stats`] /
//! [`Runtime::shutdown`](crate::Runtime::shutdown) walk all shards and
//! fold them into one snapshot.
//!
//! Latency is tracked end-to-end (enqueue → ticket resolution, so queueing
//! and batching-window time are included) in a [`LatencyHistogram`] with
//! geometric fixed buckets; [`LatencyHistogram::p50`] / `p99` read
//! quantiles from the bucket counts without recording individual samples.
//!
//! [`Runtime::stats`]: crate::Runtime::stats

use scales_telemetry::OpProfile;
use scales_tensor::backend::Backend;
use scales_tensor::SimdLevel;
use std::time::Duration;

/// Number of geometric latency buckets: bucket `i` holds samples up to
/// `1 µs × 2^i`, so the histogram spans 1 µs to ~35 min — comfortably
/// both a cached 8×8 forward and a pathological stall.
pub const LATENCY_BUCKETS: usize = 32;

/// Fixed-bucket latency histogram with geometric bounds.
///
/// Recording is O(buckets) worst case and allocation-free; quantile reads
/// report the **upper bound** of the bucket containing the requested rank
/// (a conservative estimate with at most 2× resolution error, which is
/// what fixed geometric buckets buy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Upper bound of bucket `i`, in nanoseconds.
    fn bound_ns(i: usize) -> u128 {
        1_000u128 << i
    }

    fn bucket_for(ns: u128) -> usize {
        for i in 0..LATENCY_BUCKETS {
            if ns <= Self::bound_ns(i) {
                return i;
            }
        }
        LATENCY_BUCKETS - 1
    }

    /// Record one sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos();
        self.counts[Self::bucket_for(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(u64::try_from(ns).unwrap_or(u64::MAX));
    }

    /// Fold another histogram into this one (shard aggregation).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (zero when empty).
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let ns = self.sum_ns / u128::from(self.total);
        Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Largest sample seen (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The latency at quantile `q ∈ [0, 1]`, reported as the upper bound
    /// of the bucket containing that rank (zero when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket bound to the observed max so a lone
                // sample deep inside a wide bucket (or below the first
                // bound) never reports a quantile above `max()`.
                let ns = Self::bound_ns(i).min(u128::from(self.max_ns));
                return Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX));
            }
        }
        self.max()
    }

    /// Upper bound of bucket `i` as a [`Duration`]
    /// (`1 µs × 2^i`; see [`LATENCY_BUCKETS`]).
    ///
    /// # Panics
    ///
    /// Panics when `i >= LATENCY_BUCKETS`.
    #[must_use]
    pub fn bucket_bound(i: usize) -> Duration {
        assert!(i < LATENCY_BUCKETS, "bucket index {i} out of range");
        Duration::from_nanos(u64::try_from(Self::bound_ns(i)).unwrap_or(u64::MAX))
    }

    /// Per-bucket sample counts (not cumulative), index-aligned with
    /// [`LatencyHistogram::bucket_bound`].
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.counts
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(u64::try_from(self.sum_ns).unwrap_or(u64::MAX))
    }

    /// Median latency (bucket upper bound).
    #[must_use]
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (bucket upper bound).
    #[must_use]
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Append this histogram's cumulative `_bucket` series plus `_sum`
    /// and `_count` under an already-written `# HELP`/`# TYPE` header.
    /// `labels` is empty for a bare series, or a `key="value",` prefix
    /// spliced in front of the `le` label (and carried, sans comma, on
    /// `_sum`/`_count`) — the shared rendering behind the runtime's own
    /// series and the HTTP front end's `scales_http_stage_seconds`.
    pub fn render_prometheus_into(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}le=\"{}\"}} {cumulative}",
                seconds(Self::bucket_bound(i))
            );
        }
        let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {}", self.count());
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", seconds(self.sum()));
            let _ = writeln!(out, "{name}_count {}", self.count());
        } else {
            let bare = labels.trim_end_matches(',');
            let _ = writeln!(out, "{name}_sum{{{bare}}} {}", seconds(self.sum()));
            let _ = writeln!(out, "{name}_count{{{bare}}} {}", self.count());
        }
    }
}

/// One worker's private counter shard. Workers only ever lock their own.
#[derive(Debug, Clone, Default)]
pub(crate) struct WorkerShard {
    /// Requests resolved successfully.
    pub completed: u64,
    /// Requests resolved with an error (the whole dispatch failed).
    pub failed: u64,
    /// Images served across all completed requests.
    pub images: u64,
    /// Coalesced forward dispatches (one `Session::infer` call each).
    pub dispatches: u64,
    /// Requests that shared their dispatch with at least one other
    /// request — the callers dynamic batching actually helped.
    pub coalesced: u64,
    /// Wall time spent inside `Session::infer`.
    pub busy: Duration,
    /// Bytes resident in this worker's session workspace (arena slots +
    /// cached plans), re-sampled after every dispatch.
    pub workspace_bytes: usize,
    /// End-to-end request latency (enqueue → resolution).
    pub latency: LatencyHistogram,
    /// Queue residence per request (enqueue → worker pop).
    pub queue_wait: LatencyHistogram,
    /// Batch-assembly wait per request (worker pop → batch sealed).
    pub batch_wait: LatencyHistogram,
    /// Forward span per request (batch sealed → infer done).
    pub infer: LatencyHistogram,
    /// Responses resolved after their submitter's `submit_wait_timeout`
    /// deadline gave up — served work whose result nobody read.
    pub late_discarded: u64,
    /// Latest per-op plan profile sampled from this worker's session
    /// (cumulative over the session's lifetime; empty while profiling
    /// is off).
    pub op_profile: OpProfile,
}

impl WorkerShard {
    pub(crate) fn merge(&mut self, other: &Self) {
        self.completed += other.completed;
        self.failed += other.failed;
        self.images += other.images;
        self.dispatches += other.dispatches;
        self.coalesced += other.coalesced;
        self.busy += other.busy;
        self.workspace_bytes += other.workspace_bytes;
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
        self.batch_wait.merge(&other.batch_wait);
        self.infer.merge(&other.infer);
        self.late_discarded += other.late_discarded;
        self.op_profile.merge(&other.op_profile);
    }
}

/// One tenant lane's admission and serving counters, reported inside
/// [`RuntimeStats::tenants`]. Only *tagged* tenants appear here —
/// untagged traffic shares the anonymous lane and is visible in the
/// global counters alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant tag ([`SrRequest::tenant`](scales_serve::SrRequest::tenant)).
    pub tenant: String,
    /// The lane's weighted-round-robin dequeue weight
    /// ([`RuntimeConfig::tenant_weights`](crate::RuntimeConfig::tenant_weights)).
    pub weight: u32,
    /// Requests queued in this lane at snapshot time.
    pub queued: usize,
    /// Requests accepted into this lane.
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests resolved with an error (dispatch failure or unserved at
    /// shutdown).
    pub failed: u64,
    /// Requests refused for capacity: queue full, or an admission
    /// timeout while blocked for space.
    pub rejected: u64,
    /// Requests refused early by the shed policy.
    pub shed: u64,
    /// Requests refused at this lane's quota.
    pub quota_rejected: u64,
    /// Requests whose deadline passed before dispatch (never served).
    pub expired: u64,
    /// Requests served, but after their deadline passed mid-flight.
    pub deadline_misses: u64,
}

/// Aggregated snapshot of a runtime's serving counters, returned by
/// [`Runtime::stats`](crate::Runtime::stats) (live) and
/// [`Runtime::shutdown`](crate::Runtime::shutdown) (final).
#[derive(Debug, Clone)]
pub struct RuntimeStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Backend the runtime's engine dispatches forwards under.
    pub backend: Backend,
    /// CPU SIMD level the backend's kernel dispatches at
    /// ([`SimdLevel::None`] for the scalar
    /// and parallel kernels, the detected feature level for simd).
    pub simd: SimdLevel,
    /// The configured dispatch target ([`RuntimeConfig::max_batch`](crate::RuntimeConfig::max_batch)).
    pub max_batch: usize,
    /// Requests accepted into the queue so far.
    pub submitted: u64,
    /// Requests rejected at submission: [`SubmitError::QueueFull`](crate::SubmitError::QueueFull),
    /// or a [`submit_wait_timeout`](crate::Runtime::submit_wait_timeout)
    /// deadline that expired while still blocked for queue space.
    pub rejected: u64,
    /// Requests refused early by the shed policy
    /// ([`SubmitError::Shedding`](crate::SubmitError::Shedding)).
    pub shed: u64,
    /// Requests refused at a tenant lane quota
    /// ([`SubmitError::TenantQuota`](crate::SubmitError::TenantQuota)).
    pub quota_rejected: u64,
    /// Requests whose deadline passed before dispatch
    /// ([`SubmitError::Expired`](crate::SubmitError::Expired)) — refused
    /// at the door or retracted from the queue, never served.
    pub expired: u64,
    /// Requests served successfully, but after their deadline passed
    /// mid-flight — the late-but-served counterpart of `expired`.
    pub deadline_misses: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests resolved with an error.
    pub failed: u64,
    /// Images served.
    pub images: u64,
    /// Coalesced forward dispatches (one `Session::infer` each).
    pub dispatches: u64,
    /// Requests that shared a dispatch with at least one other request.
    pub coalesced: u64,
    /// Requests queued (accepted, not yet dispatched) at snapshot time.
    pub queue_depth: usize,
    /// Deepest the queue has been.
    pub queue_high_water: usize,
    /// Bytes resident across the workers' planned-executor workspaces
    /// (arena slots + cached plans) — the runtime's live plan-cache
    /// memory, summed over worker sessions at their last dispatch.
    pub workspace_bytes: usize,
    /// Mean images per dispatch relative to `max_batch`:
    /// `images / (dispatches × max_batch)`. Can exceed 1.0 when single
    /// requests are larger than `max_batch`.
    pub batch_fill: f64,
    /// Total worker wall time inside forwards.
    pub busy: Duration,
    /// Wall time since [`Runtime::spawn`](crate::Runtime::spawn).
    pub elapsed: Duration,
    /// End-to-end request latency (enqueue → ticket resolution).
    pub latency: LatencyHistogram,
    /// Queue residence per request (enqueue → worker pop) — the
    /// `queue_wait` stage of the request trace, as a histogram.
    pub queue_wait: LatencyHistogram,
    /// Batch-assembly wait per request (worker pop → batch sealed) —
    /// the `batch_wait` trace stage.
    pub batch_wait: LatencyHistogram,
    /// Forward span per request (batch sealed → infer done) — the
    /// `infer` trace stage. Coalesced requests share one forward, so
    /// each records the same span.
    pub infer: LatencyHistogram,
    /// Responses that resolved after their submitter's
    /// [`submit_wait_timeout`](crate::Runtime::submit_wait_timeout)
    /// deadline gave up waiting — the work was served (and counted in
    /// `completed`/`failed`), but the result was discarded unread.
    pub late_discarded: u64,
    /// Cumulative per-op plan profile across worker sessions, populated
    /// while [`RuntimeConfig::profile_ops`](crate::RuntimeConfig::profile_ops)
    /// is on (empty otherwise).
    pub op_profile: OpProfile,
    /// Per-tenant lane counters, sorted by tenant name. Empty when no
    /// request carried a tenant tag and no weights were configured.
    pub tenants: Vec<TenantStats>,
}

impl RuntimeStats {
    /// Completed requests per second of runtime lifetime.
    #[must_use]
    pub fn requests_per_sec(&self) -> f64 {
        per_sec(self.completed, self.elapsed)
    }

    /// Served images per second of runtime lifetime.
    #[must_use]
    pub fn images_per_sec(&self) -> f64 {
        per_sec(self.images, self.elapsed)
    }
}

impl RuntimeStats {
    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` comments, counters with a
    /// `_total` suffix, gauges, and the latency histogram as a cumulative
    /// `_bucket{le="..."}` series (bounds in seconds) with `_sum` and
    /// `_count`. This is the exact body `GET /metrics` on
    /// `scales_http::HttpServer` serves.
    ///
    /// The format is pinned by a unit test: changing a metric name or the
    /// line layout is a deliberate, test-visible act.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}");
        };
        counter(
            "scales_runtime_requests_submitted_total",
            "Requests accepted into the queue.",
            self.submitted.to_string(),
        );
        counter(
            "scales_runtime_requests_rejected_total",
            "Requests rejected at submission (queue full or admission timeout).",
            self.rejected.to_string(),
        );
        counter(
            "scales_runtime_requests_shed_total",
            "Requests refused early by the shed policy.",
            self.shed.to_string(),
        );
        counter(
            "scales_runtime_requests_quota_rejected_total",
            "Requests refused at a tenant lane quota.",
            self.quota_rejected.to_string(),
        );
        counter(
            "scales_runtime_requests_expired_total",
            "Requests whose deadline passed before dispatch (never served).",
            self.expired.to_string(),
        );
        counter(
            "scales_runtime_deadline_misses_total",
            "Requests served after their deadline passed mid-flight.",
            self.deadline_misses.to_string(),
        );
        counter(
            "scales_runtime_requests_completed_total",
            "Requests served successfully.",
            self.completed.to_string(),
        );
        counter(
            "scales_runtime_requests_failed_total",
            "Requests resolved with an error.",
            self.failed.to_string(),
        );
        counter("scales_runtime_images_total", "Images served.", self.images.to_string());
        counter(
            "scales_runtime_dispatches_total",
            "Coalesced forward dispatches (one Session::infer each).",
            self.dispatches.to_string(),
        );
        counter(
            "scales_runtime_requests_coalesced_total",
            "Requests that shared a dispatch with at least one other request.",
            self.coalesced.to_string(),
        );
        counter(
            "scales_runtime_busy_seconds_total",
            "Worker wall time spent inside forwards.",
            seconds(self.busy),
        );
        let mut gauge = |name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}");
        };
        gauge("scales_runtime_workers", "Worker threads in the pool.", self.workers.to_string());
        gauge(
            "scales_runtime_max_batch",
            "Configured images per coalesced dispatch.",
            self.max_batch.to_string(),
        );
        gauge(
            "scales_runtime_queue_depth",
            "Requests queued (accepted, not yet dispatched) at scrape time.",
            self.queue_depth.to_string(),
        );
        gauge(
            "scales_runtime_queue_high_water",
            "Deepest the queue has been.",
            self.queue_high_water.to_string(),
        );
        gauge(
            "scales_runtime_workspace_bytes",
            "Bytes resident across worker planned-executor workspaces.",
            self.workspace_bytes.to_string(),
        );
        gauge(
            "scales_runtime_batch_fill",
            "Mean images per dispatch relative to max_batch.",
            self.batch_fill.to_string(),
        );
        gauge(
            "scales_runtime_uptime_seconds",
            "Wall time since the runtime started.",
            seconds(self.elapsed),
        );
        let _ = writeln!(
            out,
            "# HELP scales_runtime_info Serving backend of the runtime's engine (constant 1; labels carry the info).\n\
             # TYPE scales_runtime_info gauge\n\
             scales_runtime_info{{backend=\"{}\",simd=\"{}\"}} 1",
            self.backend, self.simd
        );
        let name = "scales_runtime_request_latency_seconds";
        let _ = writeln!(
            out,
            "# HELP {name} End-to-end request latency (enqueue to ticket resolution).\n# TYPE {name} histogram"
        );
        histogram_lines(&mut out, name, "", &self.latency);
        let _ = writeln!(
            out,
            "# HELP scales_runtime_late_discarded_total Responses resolved after their submitter gave up waiting (result discarded unread).\n\
             # TYPE scales_runtime_late_discarded_total counter\n\
             scales_runtime_late_discarded_total {}",
            self.late_discarded
        );
        let _ = writeln!(
            out,
            "# HELP scales_build_info Build metadata of the serving stack (constant 1; labels carry the info).\n\
             # TYPE scales_build_info gauge\n\
             scales_build_info{{version=\"{}\",features=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION"),
            scales_tensor::backend::compiled_features()
        );
        // Per-stage histograms render only once the runtime has served
        // work, and the per-op series only while the profiler is on, so
        // the base rendering stays exactly the pinned text.
        let stages: [(&str, &LatencyHistogram); 3] = [
            ("queue_wait", &self.queue_wait),
            ("batch_wait", &self.batch_wait),
            ("infer", &self.infer),
        ];
        if stages.iter().any(|(_, h)| h.count() > 0) {
            let name = "scales_runtime_stage_seconds";
            let _ = writeln!(
                out,
                "# HELP {name} Per-request stage spans inside the runtime (queue wait, batch assembly, forward).\n# TYPE {name} histogram"
            );
            for (stage, hist) in stages {
                histogram_lines(&mut out, name, &format!("stage=\"{stage}\","), hist);
            }
        }
        if !self.op_profile.is_empty() {
            let name = "scales_plan_op_calls_total";
            let _ = writeln!(
                out,
                "# HELP {name} Planned-executor op executions, per deployed op kind.\n# TYPE {name} counter"
            );
            for e in self.op_profile.entries() {
                let _ = writeln!(out, "{name}{{op=\"{}\"}} {}", e.kind, e.calls);
            }
            let name = "scales_plan_op_seconds_total";
            let _ = writeln!(
                out,
                "# HELP {name} Wall time inside planned-executor ops, per deployed op kind.\n# TYPE {name} counter"
            );
            for e in self.op_profile.entries() {
                let _ = writeln!(
                    out,
                    "{name}{{op=\"{}\"}} {}",
                    e.kind,
                    seconds(Duration::from_nanos(e.total_ns))
                );
            }
        }
        // Per-tenant lane series, after the scalar block so tenant-free
        // runtimes render the exact historical text.
        if !self.tenants.is_empty() {
            let mut tenant_counter = |name: &str, help: &str, value: fn(&TenantStats) -> u64| {
                let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter");
                for t in &self.tenants {
                    let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.tenant, value(t));
                }
            };
            tenant_counter(
                "scales_runtime_tenant_requests_submitted_total",
                "Requests accepted, per tenant lane.",
                |t| t.submitted,
            );
            tenant_counter(
                "scales_runtime_tenant_requests_completed_total",
                "Requests served successfully, per tenant lane.",
                |t| t.completed,
            );
            tenant_counter(
                "scales_runtime_tenant_requests_failed_total",
                "Requests resolved with an error, per tenant lane.",
                |t| t.failed,
            );
            tenant_counter(
                "scales_runtime_tenant_requests_rejected_total",
                "Requests rejected for capacity, per tenant lane.",
                |t| t.rejected,
            );
            tenant_counter(
                "scales_runtime_tenant_requests_shed_total",
                "Requests refused by the shed policy, per tenant lane.",
                |t| t.shed,
            );
            tenant_counter(
                "scales_runtime_tenant_requests_quota_rejected_total",
                "Requests refused at the lane quota, per tenant lane.",
                |t| t.quota_rejected,
            );
            tenant_counter(
                "scales_runtime_tenant_requests_expired_total",
                "Requests expired before dispatch, per tenant lane.",
                |t| t.expired,
            );
            tenant_counter(
                "scales_runtime_tenant_deadline_misses_total",
                "Requests served after their deadline, per tenant lane.",
                |t| t.deadline_misses,
            );
            let mut tenant_gauge = |name: &str, help: &str, value: fn(&TenantStats) -> u64| {
                let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge");
                for t in &self.tenants {
                    let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.tenant, value(t));
                }
            };
            tenant_gauge(
                "scales_runtime_tenant_queue_depth",
                "Requests queued at scrape time, per tenant lane.",
                |t| t.queued as u64,
            );
            tenant_gauge(
                "scales_runtime_tenant_weight",
                "Weighted-round-robin dequeue weight of the tenant lane.",
                |t| u64::from(t.weight),
            );
        }
        out
    }
}

/// A duration as a Prometheus value: seconds, shortest-round-trip f64
/// formatting (stable across platforms).
fn seconds(d: Duration) -> String {
    format!("{}", d.as_secs_f64())
}

/// Append one histogram's series (see
/// [`LatencyHistogram::render_prometheus_into`]).
fn histogram_lines(out: &mut String, name: &str, labels: &str, hist: &LatencyHistogram) {
    hist.render_prometheus_into(out, name, labels);
}

#[allow(clippy::cast_precision_loss)]
fn per_sec(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "runtime: {} workers on {} (simd {}) | {} submitted, {} completed, {} failed, {} rejected",
            self.workers, self.backend, self.simd, self.submitted, self.completed, self.failed, self.rejected
        )?;
        writeln!(
            f,
            "  throughput: {:.1} req/s, {:.1} images/s ({} images over {:.2?}, busy {:.2?})",
            self.requests_per_sec(),
            self.images_per_sec(),
            self.images,
            self.elapsed,
            self.busy
        )?;
        writeln!(
            f,
            "  batching: {} dispatches, fill {:.2} of max_batch {}, {} requests coalesced",
            self.dispatches, self.batch_fill, self.max_batch, self.coalesced
        )?;
        writeln!(
            f,
            "  queue: depth {} now, high water {}",
            self.queue_depth, self.queue_high_water
        )?;
        writeln!(
            f,
            "  admission: {} shed, {} quota-limited, {} expired, {} deadline misses, {} late-discarded ({} tenant lanes)",
            self.shed,
            self.quota_rejected,
            self.expired,
            self.deadline_misses,
            self.late_discarded,
            self.tenants.len()
        )?;
        write!(
            f,
            "  latency: p50 {:.2?}, p99 {:.2?}, max {:.2?} ({} samples)",
            self.latency.p50(),
            self.latency.p99(),
            self.latency.max(),
            self.latency.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn quantiles_walk_the_bucket_bounds() {
        let mut h = LatencyHistogram::default();
        // 99 fast samples (~2 µs) and one slow outlier (~1 ms).
        for _ in 0..99 {
            h.record(Duration::from_micros(2));
        }
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 100);
        // p50 lands in the 2 µs bucket (bound 2 µs), p99 still fast,
        // p100 reaches the outlier's bucket.
        assert_eq!(h.p50(), Duration::from_micros(2));
        assert_eq!(h.p99(), Duration::from_micros(2));
        assert!(h.quantile(1.0) >= Duration::from_millis(1));
        assert_eq!(h.max(), Duration::from_millis(1));
    }

    #[test]
    fn reported_quantile_never_exceeds_the_observed_max() {
        let mut h = LatencyHistogram::default();
        // One sample deep inside a wide bucket: the bucket bound (≈2 s)
        // must be clamped to the observed max, not reported raw.
        h.record(Duration::from_millis(1100));
        assert_eq!(h.p50(), Duration::from_millis(1100));
        assert_eq!(h.p99(), h.max());
        // Same below the first bucket bound (sub-microsecond sample).
        let mut fast = LatencyHistogram::default();
        fast.record(Duration::from_nanos(500));
        assert_eq!(fast.p50(), Duration::from_nanos(500));
        assert!(fast.p99() <= fast.max());
    }

    #[test]
    fn merge_accumulates_counts_and_extremes() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_micros(500));
        assert!(a.mean() > Duration::from_micros(300));
    }

    #[test]
    fn oversized_samples_clamp_into_the_last_bucket() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.count(), 1);
        assert!(h.p50() > Duration::ZERO);
    }

    #[test]
    fn prometheus_rendering_is_pinned() {
        let mut latency = LatencyHistogram::default();
        latency.record(Duration::from_micros(2)); // bucket 1 (bound 2 µs)
        latency.record(Duration::from_micros(2)); // bucket 1
        latency.record(Duration::from_millis(1)); // bucket 10 (bound 1.024 ms)
        let stats = RuntimeStats {
            workers: 2,
            backend: Backend::Scalar,
            simd: SimdLevel::None,
            max_batch: 8,
            submitted: 10,
            rejected: 1,
            shed: 2,
            quota_rejected: 1,
            expired: 3,
            deadline_misses: 1,
            completed: 9,
            failed: 0,
            images: 18,
            dispatches: 3,
            coalesced: 6,
            queue_depth: 0,
            queue_high_water: 5,
            workspace_bytes: 4096,
            batch_fill: 0.75,
            busy: Duration::from_millis(20),
            elapsed: Duration::from_millis(100),
            latency,
            queue_wait: LatencyHistogram::default(),
            batch_wait: LatencyHistogram::default(),
            infer: LatencyHistogram::default(),
            late_discarded: 4,
            op_profile: OpProfile::default(),
            tenants: Vec::new(),
        };
        let text = stats.render_prometheus();
        // The scalar series, pinned line for line.
        let expected_head = "\
# HELP scales_runtime_requests_submitted_total Requests accepted into the queue.
# TYPE scales_runtime_requests_submitted_total counter
scales_runtime_requests_submitted_total 10
# HELP scales_runtime_requests_rejected_total Requests rejected at submission (queue full or admission timeout).
# TYPE scales_runtime_requests_rejected_total counter
scales_runtime_requests_rejected_total 1
# HELP scales_runtime_requests_shed_total Requests refused early by the shed policy.
# TYPE scales_runtime_requests_shed_total counter
scales_runtime_requests_shed_total 2
# HELP scales_runtime_requests_quota_rejected_total Requests refused at a tenant lane quota.
# TYPE scales_runtime_requests_quota_rejected_total counter
scales_runtime_requests_quota_rejected_total 1
# HELP scales_runtime_requests_expired_total Requests whose deadline passed before dispatch (never served).
# TYPE scales_runtime_requests_expired_total counter
scales_runtime_requests_expired_total 3
# HELP scales_runtime_deadline_misses_total Requests served after their deadline passed mid-flight.
# TYPE scales_runtime_deadline_misses_total counter
scales_runtime_deadline_misses_total 1
# HELP scales_runtime_requests_completed_total Requests served successfully.
# TYPE scales_runtime_requests_completed_total counter
scales_runtime_requests_completed_total 9
# HELP scales_runtime_requests_failed_total Requests resolved with an error.
# TYPE scales_runtime_requests_failed_total counter
scales_runtime_requests_failed_total 0
# HELP scales_runtime_images_total Images served.
# TYPE scales_runtime_images_total counter
scales_runtime_images_total 18
# HELP scales_runtime_dispatches_total Coalesced forward dispatches (one Session::infer each).
# TYPE scales_runtime_dispatches_total counter
scales_runtime_dispatches_total 3
# HELP scales_runtime_requests_coalesced_total Requests that shared a dispatch with at least one other request.
# TYPE scales_runtime_requests_coalesced_total counter
scales_runtime_requests_coalesced_total 6
# HELP scales_runtime_busy_seconds_total Worker wall time spent inside forwards.
# TYPE scales_runtime_busy_seconds_total counter
scales_runtime_busy_seconds_total 0.02
# HELP scales_runtime_workers Worker threads in the pool.
# TYPE scales_runtime_workers gauge
scales_runtime_workers 2
# HELP scales_runtime_max_batch Configured images per coalesced dispatch.
# TYPE scales_runtime_max_batch gauge
scales_runtime_max_batch 8
# HELP scales_runtime_queue_depth Requests queued (accepted, not yet dispatched) at scrape time.
# TYPE scales_runtime_queue_depth gauge
scales_runtime_queue_depth 0
# HELP scales_runtime_queue_high_water Deepest the queue has been.
# TYPE scales_runtime_queue_high_water gauge
scales_runtime_queue_high_water 5
# HELP scales_runtime_workspace_bytes Bytes resident across worker planned-executor workspaces.
# TYPE scales_runtime_workspace_bytes gauge
scales_runtime_workspace_bytes 4096
# HELP scales_runtime_batch_fill Mean images per dispatch relative to max_batch.
# TYPE scales_runtime_batch_fill gauge
scales_runtime_batch_fill 0.75
# HELP scales_runtime_uptime_seconds Wall time since the runtime started.
# TYPE scales_runtime_uptime_seconds gauge
scales_runtime_uptime_seconds 0.1
# HELP scales_runtime_info Serving backend of the runtime's engine (constant 1; labels carry the info).
# TYPE scales_runtime_info gauge
scales_runtime_info{backend=\"scalar\",simd=\"none\"} 1
# HELP scales_runtime_request_latency_seconds End-to-end request latency (enqueue to ticket resolution).
# TYPE scales_runtime_request_latency_seconds histogram
";
        assert!(
            text.starts_with(expected_head),
            "prometheus head diverged:\n{text}"
        );
        // Histogram: cumulative buckets. The three samples land in the
        // 2 µs and 1.024 ms buckets; every later bound reports 3.
        let tail = &text[expected_head.len()..];
        let lines: Vec<&str> = tail.lines().collect();
        assert_eq!(
            lines.len(),
            LATENCY_BUCKETS + 3 + 6,
            "32 buckets + +Inf + sum + count, then late-discarded and build-info blocks"
        );
        assert_eq!(lines[0], "scales_runtime_request_latency_seconds_bucket{le=\"0.000001\"} 0");
        assert_eq!(lines[1], "scales_runtime_request_latency_seconds_bucket{le=\"0.000002\"} 2");
        assert_eq!(lines[10], "scales_runtime_request_latency_seconds_bucket{le=\"0.001024\"} 3");
        assert_eq!(
            lines[LATENCY_BUCKETS - 1],
            "scales_runtime_request_latency_seconds_bucket{le=\"2147.483648\"} 3"
        );
        assert_eq!(lines[LATENCY_BUCKETS], "scales_runtime_request_latency_seconds_bucket{le=\"+Inf\"} 3");
        assert_eq!(lines[LATENCY_BUCKETS + 1], "scales_runtime_request_latency_seconds_sum 0.001004");
        assert_eq!(lines[LATENCY_BUCKETS + 2], "scales_runtime_request_latency_seconds_count 3");
        // The always-on observability tail: late-discarded counter, then
        // the build-info gauge (labels vary with the build, so the last
        // line is matched against the same sources the renderer reads).
        assert_eq!(
            lines[LATENCY_BUCKETS + 3],
            "# HELP scales_runtime_late_discarded_total Responses resolved after their submitter gave up waiting (result discarded unread)."
        );
        assert_eq!(lines[LATENCY_BUCKETS + 4], "# TYPE scales_runtime_late_discarded_total counter");
        assert_eq!(lines[LATENCY_BUCKETS + 5], "scales_runtime_late_discarded_total 4");
        assert_eq!(
            lines[LATENCY_BUCKETS + 6],
            "# HELP scales_build_info Build metadata of the serving stack (constant 1; labels carry the info)."
        );
        assert_eq!(lines[LATENCY_BUCKETS + 7], "# TYPE scales_build_info gauge");
        assert_eq!(
            lines[LATENCY_BUCKETS + 8],
            format!(
                "scales_build_info{{version=\"{}\",features=\"{}\"}} 1",
                env!("CARGO_PKG_VERSION"),
                scales_tensor::backend::compiled_features()
            )
        );
        // Trace-derived series are gated on data: none here.
        assert!(!text.contains("scales_runtime_stage_seconds"));
        assert!(!text.contains("scales_plan_op_"));
        // Cumulative monotonicity across the whole series.
        let mut last = 0u64;
        for line in &lines[..LATENCY_BUCKETS] {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket series must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn stats_display_mentions_every_axis() {
        let stats = RuntimeStats {
            workers: 2,
            backend: Backend::Scalar,
            simd: SimdLevel::None,
            max_batch: 8,
            submitted: 10,
            rejected: 1,
            shed: 4,
            quota_rejected: 2,
            expired: 1,
            deadline_misses: 0,
            completed: 9,
            failed: 0,
            images: 18,
            dispatches: 3,
            coalesced: 6,
            queue_depth: 0,
            queue_high_water: 5,
            workspace_bytes: 0,
            batch_fill: 0.75,
            busy: Duration::from_millis(20),
            elapsed: Duration::from_millis(100),
            latency: LatencyHistogram::default(),
            queue_wait: LatencyHistogram::default(),
            batch_wait: LatencyHistogram::default(),
            infer: LatencyHistogram::default(),
            late_discarded: 3,
            op_profile: OpProfile::default(),
            tenants: vec![TenantStats {
                tenant: "acme".into(),
                weight: 3,
                queued: 0,
                submitted: 10,
                completed: 9,
                failed: 0,
                rejected: 1,
                shed: 4,
                quota_rejected: 2,
                expired: 1,
                deadline_misses: 0,
            }],
        };
        let text = stats.to_string();
        for needle in [
            "workers",
            "scalar",
            "simd none",
            "req/s",
            "fill",
            "high water",
            "p50",
            "p99",
            "4 shed",
            "2 quota-limited",
            "1 expired",
            "0 deadline misses",
            "3 late-discarded",
            "1 tenant lanes",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text}");
        }
        assert!(stats.requests_per_sec() > 80.0);
    }

    #[test]
    fn tenant_series_render_after_the_scalar_block() {
        let base = RuntimeStats {
            workers: 1,
            backend: Backend::Scalar,
            simd: SimdLevel::None,
            max_batch: 8,
            submitted: 7,
            rejected: 0,
            shed: 0,
            quota_rejected: 2,
            expired: 0,
            deadline_misses: 1,
            completed: 5,
            failed: 0,
            images: 5,
            dispatches: 5,
            coalesced: 0,
            queue_depth: 1,
            queue_high_water: 3,
            workspace_bytes: 0,
            batch_fill: 0.5,
            busy: Duration::ZERO,
            elapsed: Duration::from_millis(50),
            latency: LatencyHistogram::default(),
            queue_wait: LatencyHistogram::default(),
            batch_wait: LatencyHistogram::default(),
            infer: LatencyHistogram::default(),
            late_discarded: 0,
            op_profile: OpProfile::default(),
            tenants: Vec::new(),
        };
        // Tenant-free stats render no tenant series at all.
        assert!(!base.render_prometheus().contains("scales_runtime_tenant_"));
        let mut stats = base;
        stats.tenants = vec![
            TenantStats {
                tenant: "acme".into(),
                weight: 3,
                queued: 1,
                submitted: 5,
                completed: 3,
                failed: 0,
                rejected: 0,
                shed: 0,
                quota_rejected: 2,
                expired: 0,
                deadline_misses: 1,
            },
            TenantStats {
                tenant: "zeta".into(),
                weight: 1,
                queued: 0,
                submitted: 2,
                completed: 2,
                failed: 0,
                rejected: 0,
                shed: 0,
                quota_rejected: 0,
                expired: 0,
                deadline_misses: 0,
            },
        ];
        let text = stats.render_prometheus();
        // Labeled series sit after the histogram so the scalar block is
        // byte-identical to the tenant-free rendering.
        let histogram_count = "scales_runtime_request_latency_seconds_count 0\n";
        let tail_at = text.find(histogram_count).unwrap() + histogram_count.len();
        let tail = &text[tail_at..];
        for line in [
            "# HELP scales_runtime_tenant_requests_submitted_total Requests accepted, per tenant lane.",
            "# TYPE scales_runtime_tenant_requests_submitted_total counter",
            "scales_runtime_tenant_requests_submitted_total{tenant=\"acme\"} 5",
            "scales_runtime_tenant_requests_submitted_total{tenant=\"zeta\"} 2",
            "scales_runtime_tenant_requests_quota_rejected_total{tenant=\"acme\"} 2",
            "scales_runtime_tenant_deadline_misses_total{tenant=\"acme\"} 1",
            "scales_runtime_tenant_queue_depth{tenant=\"acme\"} 1",
            "scales_runtime_tenant_weight{tenant=\"acme\"} 3",
            "scales_runtime_tenant_weight{tenant=\"zeta\"} 1",
        ] {
            assert!(tail.contains(line), "missing {line:?} in tail:\n{tail}");
        }
        // Each metric name declares HELP/TYPE exactly once, with one line
        // per tenant under it.
        assert_eq!(tail.matches("# TYPE scales_runtime_tenant_requests_submitted_total").count(), 1);
        assert_eq!(
            tail.matches("scales_runtime_tenant_requests_submitted_total{tenant=").count(),
            2
        );
    }

    #[test]
    fn stage_and_op_series_are_gated_on_data() {
        let mut stats = RuntimeStats {
            workers: 1,
            backend: Backend::Scalar,
            simd: SimdLevel::None,
            max_batch: 8,
            submitted: 0,
            rejected: 0,
            shed: 0,
            quota_rejected: 0,
            expired: 0,
            deadline_misses: 0,
            completed: 0,
            failed: 0,
            images: 0,
            dispatches: 0,
            coalesced: 0,
            queue_depth: 0,
            queue_high_water: 0,
            workspace_bytes: 0,
            batch_fill: 0.0,
            busy: Duration::ZERO,
            elapsed: Duration::from_millis(10),
            latency: LatencyHistogram::default(),
            queue_wait: LatencyHistogram::default(),
            batch_wait: LatencyHistogram::default(),
            infer: LatencyHistogram::default(),
            late_discarded: 0,
            op_profile: OpProfile::default(),
            tenants: Vec::new(),
        };
        // An idle runtime renders neither gated family, but always the
        // late-discarded counter and the build-info gauge.
        let text = stats.render_prometheus();
        assert!(!text.contains("scales_runtime_stage_seconds"), "{text}");
        assert!(!text.contains("scales_plan_op_"), "{text}");
        assert!(text.contains("scales_runtime_late_discarded_total 0"));
        assert!(text.contains("scales_build_info{version=\""));
        // One recorded stage span renders all three stage series (zeros
        // included — a scrape must see a consistent label set).
        stats.queue_wait.record(Duration::from_micros(3));
        stats.infer.record(Duration::from_micros(9));
        stats.op_profile.record("body_conv", 1500);
        stats.op_profile.record("relu", 40);
        let text = stats.render_prometheus();
        assert!(text.contains(
            "scales_runtime_stage_seconds_bucket{stage=\"queue_wait\",le=\"0.000004\"} 1"
        ));
        assert!(text.contains("scales_runtime_stage_seconds_sum{stage=\"queue_wait\"} 0.000003"));
        assert!(text.contains("scales_runtime_stage_seconds_count{stage=\"queue_wait\"} 1"));
        assert!(text.contains("scales_runtime_stage_seconds_count{stage=\"batch_wait\"} 0"));
        assert!(text.contains("scales_runtime_stage_seconds_count{stage=\"infer\"} 1"));
        assert_eq!(text.matches("# TYPE scales_runtime_stage_seconds histogram").count(), 1);
        assert!(text.contains("scales_plan_op_calls_total{op=\"body_conv\"} 1"));
        assert!(text.contains("scales_plan_op_seconds_total{op=\"body_conv\"} 0.0000015"));
        assert!(text.contains("scales_plan_op_seconds_total{op=\"relu\"} 0.00000004"));
        // The gated families sit between build info and the tenant block.
        let build_at = text.find("scales_build_info").unwrap();
        let stage_at = text.find("scales_runtime_stage_seconds").unwrap();
        assert!(stage_at > build_at);
    }
}
