//! Runtime sizing and batching-window configuration.

use scales_tensor::{Result, TensorError};
use std::time::Duration;

/// Sizing of a [`Runtime`](crate::Runtime): worker count, submission-queue
/// bound, and the dynamic batcher's coalescing window.
///
/// All fields are public; start from [`RuntimeConfig::default`] and
/// override with struct-update syntax:
///
/// ```
/// use scales_runtime::RuntimeConfig;
/// use std::time::Duration;
///
/// let config = RuntimeConfig {
///     workers: 4,
///     max_wait: Duration::from_millis(1),
///     ..RuntimeConfig::default()
/// };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads, each owning a private serving session (its own
    /// planned-executor workspace and per-shape plan cache). Default: the
    /// machine's available parallelism.
    pub workers: usize,
    /// Maximum queued (accepted but not yet dispatched) **requests**.
    /// When the queue is full, [`submit`](crate::Runtime::submit) returns
    /// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) — explicit
    /// backpressure instead of unbounded memory growth. Default: 64.
    pub queue_capacity: usize,
    /// Target **images** per coalesced dispatch. A worker stops gathering
    /// once the batch holds this many images. A single request larger than
    /// `max_batch` is still served (alone, in one dispatch). Default: 8.
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more
    /// compatible requests before dispatching — the classic dynamic
    /// batching latency/throughput knob. `Duration::ZERO` dispatches the
    /// backlog as-is without ever waiting. Default: 2 ms.
    pub max_wait: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

impl RuntimeConfig {
    /// Check the sizing is servable.
    ///
    /// # Errors
    ///
    /// Returns an error when `workers`, `queue_capacity`, or `max_batch`
    /// is zero.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime needs at least one worker".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime queue capacity must be positive".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime max_batch must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let config = RuntimeConfig::default();
        assert!(config.validate().is_ok());
        assert!(config.workers >= 1);
    }

    #[test]
    fn zero_extents_are_rejected() {
        for bad in [
            RuntimeConfig { workers: 0, ..RuntimeConfig::default() },
            RuntimeConfig { queue_capacity: 0, ..RuntimeConfig::default() },
            RuntimeConfig { max_batch: 0, ..RuntimeConfig::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        // A zero window is legal: it means "never wait for stragglers".
        let eager = RuntimeConfig { max_wait: Duration::ZERO, ..RuntimeConfig::default() };
        assert!(eager.validate().is_ok());
    }
}
