//! Runtime sizing, batching-window, and admission-control configuration.

use scales_tensor::{Result, TensorError};
use std::time::Duration;

/// Sizing of a [`Runtime`](crate::Runtime): worker count, submission-queue
/// bound, the dynamic batcher's coalescing window, and the admission
/// controller's fairness and shedding knobs.
///
/// All fields are public; start from [`RuntimeConfig::default`] and
/// override with struct-update syntax:
///
/// ```
/// use scales_runtime::RuntimeConfig;
/// use std::time::Duration;
///
/// let config = RuntimeConfig {
///     workers: 4,
///     max_wait: Duration::from_millis(1),
///     ..RuntimeConfig::default()
/// };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads, each owning a private serving session (its own
    /// planned-executor workspace and per-shape plan cache). Default: the
    /// machine's available parallelism.
    pub workers: usize,
    /// Maximum queued (accepted but not yet dispatched) **requests**
    /// across all tenant lanes. When the queue is full,
    /// [`submit`](crate::Runtime::submit) returns
    /// [`SubmitError::QueueFull`](crate::SubmitError::QueueFull) — explicit
    /// backpressure instead of unbounded memory growth. Default: 64.
    pub queue_capacity: usize,
    /// Target **images** per coalesced dispatch. A worker stops gathering
    /// once the batch holds this many images. A single request larger than
    /// `max_batch` is still served (alone, in one dispatch). Default: 8.
    pub max_batch: usize,
    /// How long a worker holding a partial batch waits for more
    /// compatible requests before dispatching — the classic dynamic
    /// batching latency/throughput knob. `Duration::ZERO` dispatches the
    /// backlog as-is without ever waiting. Default: 2 ms.
    pub max_wait: Duration,
    /// Load-shedding policy. Default: never shed (admission is bounded by
    /// `queue_capacity` alone).
    pub shed: ShedPolicy,
    /// Maximum queued requests **per tenant lane** (the anonymous lane
    /// included). A lane at its quota refuses with
    /// [`SubmitError::TenantQuota`](crate::SubmitError::TenantQuota) even
    /// while the global queue has room, so one hot tenant cannot fill the
    /// whole queue. `None` (the default) disables quotas.
    pub tenant_quota: Option<usize>,
    /// Dequeue weights for named tenants. Lanes are drained by weighted
    /// round-robin: a lane with weight `w` gets `w` dequeues per cycle
    /// among the backlogged lanes. Tenants not listed here (and the
    /// anonymous lane) weigh 1. Default: empty.
    pub tenant_weights: Vec<(String, u32)>,
    /// Maximum **tagged** tenant lanes (the anonymous lane is not
    /// counted). Lanes are created on the first accepted request of each
    /// tenant, and tenant names are client-controlled (the HTTP
    /// `X-Scales-Tenant` header), so the lane table must be bounded: at
    /// the cap, an idle unweighted lane is retired to make room (its
    /// counters fold into the global totals, its per-tenant series
    /// disappear), and when every tagged lane is weighted or still has
    /// work, new tenants share the anonymous lane instead of growing the
    /// table. Must be at least `tenant_weights.len()` (weighted lanes are
    /// created up front and never retired). Default: 64.
    pub max_tenant_lanes: usize,
    /// Enable the per-op plan profiler in every worker session: each
    /// planned forward attributes its wall time to the deployed op kinds
    /// it executed, surfaced as `RuntimeStats::op_profile` and the
    /// `scales_plan_op_*` Prometheus series. Off (the default), the
    /// planned executor takes no timestamps at all — the hot path is
    /// untouched. Default: the `SCALES_PROFILE_OPS` environment variable
    /// (`"0"`, `""`, and unset mean off; anything else means on).
    pub profile_ops: bool,
}

/// When to refuse work *before* the queue is full — the early-rejection
/// half of overload robustness. Both trip wires are optional and
/// independent; the default policy never sheds.
///
/// Shedding is deliberately fail-fast: even the blocking submit paths
/// ([`Runtime::submit_wait`](crate::Runtime::submit_wait) /
/// [`submit_wait_timeout`](crate::Runtime::submit_wait_timeout)) refuse
/// immediately with
/// [`SubmitError::Shedding`](crate::SubmitError::Shedding) instead of
/// waiting out the overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Shed once this many requests are queued. Lower than
    /// `queue_capacity` this acts as an early-warning watermark; `None`
    /// never sheds on depth.
    pub queue_watermark: Option<usize>,
    /// Shed while the observed p99 queue-to-response latency exceeds this
    /// budget. The runtime samples the p99 over a sliding window of its
    /// most recent dispatches, so the wire trips on *current* serving
    /// behavior and releases as recent dispatches come back under budget.
    /// `None` never sheds on latency.
    pub p99_trip: Option<Duration>,
    /// How long a tripped p99 reading stays authoritative without a fresh
    /// dispatch refreshing it. The trip wire stops admissions, which can
    /// drain the queue and freeze the p99 sample at its spike value; once
    /// the last reading is older than this window the wire re-arms from
    /// fresh observations instead of latching a transient spike into a
    /// permanent outage. Ignored while `p99_trip` is `None`; must be
    /// positive when it is not. Default: 1 s.
    pub p99_recovery: Duration,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            queue_watermark: None,
            p99_trip: None,
            p99_recovery: Duration::from_secs(1),
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            shed: ShedPolicy::default(),
            tenant_quota: None,
            tenant_weights: Vec::new(),
            max_tenant_lanes: 64,
            profile_ops: profile_ops_from_env(),
        }
    }
}

/// The `SCALES_PROFILE_OPS` opt-in: set to anything but `"0"` or the
/// empty string to enable the per-op plan profiler by default.
fn profile_ops_from_env() -> bool {
    std::env::var("SCALES_PROFILE_OPS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Shared tenant-name rule (also the router's model-name rule): 1–64
/// characters of `[A-Za-z0-9._-]`. Keeps names safe to embed in HTTP
/// headers and Prometheus label values without escaping.
pub(crate) fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl RuntimeConfig {
    /// Check the sizing and admission policy are servable.
    ///
    /// # Errors
    ///
    /// Returns an error when `workers`, `queue_capacity`, or `max_batch`
    /// is zero; when `tenant_quota`, the shed watermark, the p99 trip
    /// wire, or its recovery window is a vacuous zero; when
    /// `max_tenant_lanes` is zero or smaller than `tenant_weights`; or
    /// when `tenant_weights` contains a zero weight, a duplicate, or an
    /// invalid tenant name.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime needs at least one worker".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime queue capacity must be positive".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime max_batch must be positive".into(),
            ));
        }
        if self.tenant_quota == Some(0) {
            return Err(TensorError::InvalidArgument(
                "runtime tenant quota must be positive (use None to disable quotas)".into(),
            ));
        }
        if self.shed.queue_watermark == Some(0) {
            return Err(TensorError::InvalidArgument(
                "shed watermark must be positive (use None to disable depth shedding)".into(),
            ));
        }
        if self.shed.p99_trip == Some(Duration::ZERO) {
            return Err(TensorError::InvalidArgument(
                "shed p99 trip wire must be positive (use None to disable latency shedding)"
                    .into(),
            ));
        }
        if self.shed.p99_trip.is_some() && self.shed.p99_recovery == Duration::ZERO {
            return Err(TensorError::InvalidArgument(
                "shed p99 recovery window must be positive when the trip wire is armed".into(),
            ));
        }
        if self.max_tenant_lanes == 0 {
            return Err(TensorError::InvalidArgument(
                "runtime max_tenant_lanes must be positive".into(),
            ));
        }
        if self.max_tenant_lanes < self.tenant_weights.len() {
            return Err(TensorError::InvalidArgument(format!(
                "max_tenant_lanes ({}) must cover every weighted tenant ({} configured)",
                self.max_tenant_lanes,
                self.tenant_weights.len()
            )));
        }
        for (i, (name, weight)) in self.tenant_weights.iter().enumerate() {
            if !valid_tenant_name(name) {
                return Err(TensorError::InvalidArgument(format!(
                    "tenant weight name {name:?} is invalid: 1-64 characters of [A-Za-z0-9._-]"
                )));
            }
            if *weight == 0 {
                return Err(TensorError::InvalidArgument(format!(
                    "tenant {name:?} has weight 0; weights must be positive"
                )));
            }
            if self.tenant_weights[..i].iter().any(|(seen, _)| seen == name) {
                return Err(TensorError::InvalidArgument(format!(
                    "tenant {name:?} is weighted twice"
                )));
            }
        }
        Ok(())
    }

    /// The configured dequeue weight for `tenant` (1 when unlisted or
    /// anonymous).
    pub(crate) fn tenant_weight(&self, tenant: Option<&str>) -> u32 {
        tenant
            .and_then(|name| {
                self.tenant_weights
                    .iter()
                    .find(|(weighted, _)| weighted == name)
                    .map(|(_, weight)| *weight)
            })
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let config = RuntimeConfig::default();
        assert!(config.validate().is_ok());
        assert!(config.workers >= 1);
        // The profiler default tracks the environment opt-in exactly.
        assert_eq!(config.profile_ops, profile_ops_from_env());
    }

    #[test]
    fn zero_extents_are_rejected() {
        for bad in [
            RuntimeConfig { workers: 0, ..RuntimeConfig::default() },
            RuntimeConfig { queue_capacity: 0, ..RuntimeConfig::default() },
            RuntimeConfig { max_batch: 0, ..RuntimeConfig::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        // A zero window is legal: it means "never wait for stragglers".
        let eager = RuntimeConfig { max_wait: Duration::ZERO, ..RuntimeConfig::default() };
        assert!(eager.validate().is_ok());
    }

    #[test]
    fn vacuous_admission_knobs_are_rejected() {
        for bad in [
            RuntimeConfig { tenant_quota: Some(0), ..RuntimeConfig::default() },
            RuntimeConfig {
                shed: ShedPolicy { queue_watermark: Some(0), ..ShedPolicy::default() },
                ..RuntimeConfig::default()
            },
            RuntimeConfig {
                shed: ShedPolicy { p99_trip: Some(Duration::ZERO), ..ShedPolicy::default() },
                ..RuntimeConfig::default()
            },
            // An armed trip wire with a zero recovery window could never
            // re-arm meaningfully: vacuous, rejected.
            RuntimeConfig {
                shed: ShedPolicy {
                    p99_trip: Some(Duration::from_millis(1)),
                    p99_recovery: Duration::ZERO,
                    ..ShedPolicy::default()
                },
                ..RuntimeConfig::default()
            },
            RuntimeConfig { max_tenant_lanes: 0, ..RuntimeConfig::default() },
            // The cap must cover the pre-created weighted lanes.
            RuntimeConfig {
                max_tenant_lanes: 1,
                tenant_weights: vec![("a".into(), 1), ("b".into(), 2)],
                ..RuntimeConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        // The positive boundary of each knob is legal.
        let tight = RuntimeConfig {
            tenant_quota: Some(1),
            shed: ShedPolicy {
                queue_watermark: Some(1),
                p99_trip: Some(Duration::from_nanos(1)),
                p99_recovery: Duration::from_nanos(1),
            },
            max_tenant_lanes: 1,
            tenant_weights: vec![("a".into(), 1)],
            ..RuntimeConfig::default()
        };
        assert!(tight.validate().is_ok());
        // A zero recovery window is fine while the trip wire is disarmed.
        let disarmed = RuntimeConfig {
            shed: ShedPolicy { p99_recovery: Duration::ZERO, ..ShedPolicy::default() },
            ..RuntimeConfig::default()
        };
        assert!(disarmed.validate().is_ok());
    }

    #[test]
    fn tenant_weights_are_validated() {
        let zero = RuntimeConfig {
            tenant_weights: vec![("acme".into(), 0)],
            ..RuntimeConfig::default()
        };
        assert!(zero.validate().is_err());
        let duplicate = RuntimeConfig {
            tenant_weights: vec![("acme".into(), 2), ("acme".into(), 3)],
            ..RuntimeConfig::default()
        };
        assert!(duplicate.validate().is_err());
        for bad_name in ["", "has space", "x".repeat(65).as_str()] {
            let bad = RuntimeConfig {
                tenant_weights: vec![(bad_name.into(), 1)],
                ..RuntimeConfig::default()
            };
            assert!(bad.validate().is_err(), "{bad_name:?}");
        }
        let good = RuntimeConfig {
            tenant_weights: vec![("acme".into(), 3), ("coyote-2.0".into(), 1)],
            ..RuntimeConfig::default()
        };
        assert!(good.validate().is_ok());
        assert_eq!(good.tenant_weight(Some("acme")), 3);
        assert_eq!(good.tenant_weight(Some("unlisted")), 1);
        assert_eq!(good.tenant_weight(None), 1);
    }
}
